package ensemble

import (
	"testing"

	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/netem"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// diffVariant is one protocol configuration pinned against the oracle.
type diffVariant struct {
	name     string
	protocol Protocol
	core     core.Config
	n        int
}

// diffVariants covers all six paper variants plus §6-fixed instances (the
// Fixed flag switches the engine onto the receive-priority hop path).
func diffVariants(tmin, tmax core.Tick) []diffVariant {
	return []diffVariant{
		{"binary", ProtocolBinary, core.Config{TMin: tmin, TMax: tmax}, 1},
		{"revised", ProtocolBinary, core.Config{TMin: tmin, TMax: tmax, Revised: true}, 1},
		{"two-phase", ProtocolBinary, core.Config{TMin: tmin, TMax: tmax, TwoPhase: true}, 1},
		{"static", ProtocolStatic, core.Config{TMin: tmin, TMax: tmax}, 3},
		{"expanding", ProtocolExpanding, core.Config{TMin: tmin, TMax: tmax}, 2},
		{"dynamic", ProtocolDynamic, core.Config{TMin: tmin, TMax: tmax}, 2},
		{"binary-fixed", ProtocolBinary, core.Config{TMin: tmin, TMax: tmax, Fixed: true}, 1},
		{"static-fixed", ProtocolStatic, core.Config{TMin: tmin, TMax: tmax, Fixed: true}, 3},
		{"expanding-fixed", ProtocolExpanding, core.Config{TMin: tmin, TMax: tmax, Fixed: true}, 2},
	}
}

// TestEnsembleDifferentialDetection pins the ensemble's per-trial
// detection verdicts — (suspected, suspicion_tick - crash_tick) in trial
// order — against scenario.MeasureDetection on the Q2 workload shape
// (delay jitter up to tmin/2, crash jitter up to tmax), with and without
// loss, for every variant.
func TestEnsembleDifferentialDetection(t *testing.T) {
	const trials = 40
	for _, link := range []netem.LinkConfig{
		{MaxDelay: 1},                 // Q2's jittered zero-loss shape (tmin=2)
		{},                            // degenerate zero-delay links
		{LossProb: 0.08, MaxDelay: 1}, // loss + jitter: missed beats, re-halving
		{LossProb: 0.25},              // heavy loss, zero delay: ties on the round tick
	} {
		for _, v := range diffVariants(2, 16) {
			tmax := sim.Time(v.core.TMax)
			oracle, err := scenario.MeasureDetection(scenario.DetectionConfig{
				Cluster: detector.ClusterConfig{
					Protocol: v.protocol, Core: v.core, N: v.n, Link: link,
				},
				CrashAt:     tmax * 10,
				CrashJitter: tmax,
				Victim:      1,
				Horizon:     tmax * 22,
				Trials:      trials,
				Seed:        977,
			})
			if err != nil {
				t.Fatalf("%s: oracle: %v", v.name, err)
			}
			oracleDelays := oracle.Delays.Values() // insertion order: per detecting trial
			res, err := Run(Config{
				Protocol: v.protocol, Core: v.core, N: v.n, Link: link,
				CrashAt: tmax * 10, CrashJitter: tmax, Victim: 1,
				Horizon: tmax * 22, Trials: trials, Seed: 977,
				Exact: true, Record: true, Block: 7, // odd block size: exercise reset reuse
			})
			if err != nil {
				t.Fatalf("%s: ensemble: %v", v.name, err)
			}
			if res.Missed != oracle.Missed {
				t.Errorf("%s link %+v: missed %d (ensemble) vs %d (oracle)",
					v.name, link, res.Missed, oracle.Missed)
			}
			var delays []float64
			for _, o := range res.Outcomes {
				if o.Suspected {
					delays = append(delays, float64(o.SuspectAt-o.CrashedAt))
				}
			}
			if len(delays) != len(oracleDelays) {
				t.Fatalf("%s link %+v: %d detections (ensemble) vs %d (oracle)",
					v.name, link, len(delays), len(oracleDelays))
			}
			for i := range delays {
				if delays[i] != oracleDelays[i] {
					t.Fatalf("%s link %+v: trial-order delay %d: %g (ensemble) vs %g (oracle)",
						v.name, link, i, delays[i], oracleDelays[i])
				}
			}
		}
	}
}

// TestEnsembleDifferentialReliability pins per-trial false-detection
// verdicts — (failed, first non-voluntary inactivation tick) in trial
// order — against scenario.MeasureReliability on the Q3 workload shape.
func TestEnsembleDifferentialReliability(t *testing.T) {
	const trials = 60
	for _, loss := range []float64{0.1, 0.3} {
		for _, v := range diffVariants(2, 16) {
			oracle, err := scenario.MeasureReliability(scenario.ReliabilityConfig{
				Cluster: detector.ClusterConfig{
					Protocol: v.protocol, Core: v.core, N: v.n,
				},
				LossProb: loss,
				Horizon:  800,
				Trials:   trials,
				Seed:     431,
			})
			if err != nil {
				t.Fatalf("%s: oracle: %v", v.name, err)
			}
			oracleTTF := oracle.TimeToFalse.Values()
			res, err := Run(Config{
				Protocol: v.protocol, Core: v.core, N: v.n,
				Link:    netem.LinkConfig{LossProb: loss},
				Horizon: 800, Trials: trials, Seed: 431,
				Exact: true, Record: true, Block: 13,
			})
			if err != nil {
				t.Fatalf("%s: ensemble: %v", v.name, err)
			}
			if res.FalseTrials != oracle.FalseDetection.Successes {
				t.Errorf("%s loss %g: %d false trials (ensemble) vs %d (oracle)",
					v.name, loss, res.FalseTrials, oracle.FalseDetection.Successes)
			}
			var ttf []float64
			for _, o := range res.Outcomes {
				if o.False {
					ttf = append(ttf, float64(o.FalseAt))
				}
			}
			if len(ttf) != len(oracleTTF) {
				t.Fatalf("%s loss %g: %d failures (ensemble) vs %d (oracle)",
					v.name, loss, len(ttf), len(oracleTTF))
			}
			for i := range ttf {
				if ttf[i] != oracleTTF[i] {
					t.Fatalf("%s loss %g: trial-order ttf %d: %g (ensemble) vs %g (oracle)",
						v.name, loss, i, ttf[i], oracleTTF[i])
				}
			}
		}
	}
}

// TestEnsembleDifferentialOverhead pins the fault-free message count and
// the coordinator-breakdown flag against scenario.MeasureOverhead (Q1).
func TestEnsembleDifferentialOverhead(t *testing.T) {
	for _, tmax := range []core.Tick{8, 32} {
		for _, v := range diffVariants(2, tmax) {
			duration := tmax * 50
			oracle, err := scenario.MeasureOverhead(scenario.OverheadConfig{
				Cluster: detector.ClusterConfig{
					Protocol: v.protocol, Core: v.core, N: v.n, Seed: 5,
				},
				Duration: sim.Time(duration),
			})
			if err != nil {
				t.Fatalf("%s: oracle: %v", v.name, err)
			}
			res, err := Run(Config{
				Protocol: v.protocol, Core: v.core, N: v.n,
				Horizon: sim.Time(duration), Trials: 1, Seed: 5,
				Exact: true, Record: true,
			})
			if err != nil {
				t.Fatalf("%s: ensemble: %v", v.name, err)
			}
			if res.Sent != oracle.Sent {
				t.Errorf("%s tmax %d: sent %d (ensemble) vs %d (oracle)",
					v.name, tmax, res.Sent, oracle.Sent)
			}
			if (res.CoordInactivated > 0) != oracle.FalselyInactivated {
				t.Errorf("%s tmax %d: coordinator inactivation %v (ensemble) vs %v (oracle)",
					v.name, tmax, res.CoordInactivated > 0, oracle.FalselyInactivated)
			}
		}
	}
}
