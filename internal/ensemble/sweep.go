package ensemble

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Variant names one member of the paper's protocol family for sweeps.
type Variant struct {
	Name     string
	Protocol Protocol
	// TwoPhase/Revised/Fixed are the core flags; tmin/tmax come from the
	// sweep point.
	TwoPhase, Revised, Fixed bool
	// N is the member count for the multi-process variants.
	N int
}

// Variants returns the canonical six-variant family: the three binary
// refinements plus the three membership generalisations at n members.
func Variants(n int) []Variant {
	return []Variant{
		{Name: "binary", Protocol: ProtocolBinary, N: 1},
		{Name: "revised", Protocol: ProtocolBinary, Revised: true, N: 1},
		{Name: "two-phase", Protocol: ProtocolBinary, TwoPhase: true, N: 1},
		{Name: "static", Protocol: ProtocolStatic, N: n},
		{Name: "expanding", Protocol: ProtocolExpanding, N: n},
		{Name: "dynamic", Protocol: ProtocolDynamic, N: n},
	}
}

// coreFor assembles the variant's core.Config at a (tmin, tmax) point.
func (v Variant) coreFor(tmin, tmax core.Tick) core.Config {
	return core.Config{TMin: tmin, TMax: tmax, TwoPhase: v.TwoPhase, Revised: v.Revised, Fixed: v.Fixed}
}

// OverheadPoint is one Q1 surface point: fault-free steady-state message
// rate. Loss-free runs are deterministic, so one trial is exact.
type OverheadPoint struct {
	Variant            string
	TMin, TMax         core.Tick
	MsgsPerTick        float64
	Sent               uint64
	FalselyInactivated bool
}

// SweepOverhead regenerates the Q1 surface (overhead vs tmax) for every
// variant: duration 400·tmax, matching cmd/hbsim's Q1 protocol.
func SweepOverhead(variants []Variant, tmin core.Tick, tmaxes []core.Tick) ([]OverheadPoint, error) {
	var out []OverheadPoint
	for _, v := range variants {
		for _, tmax := range tmaxes {
			duration := sim.Time(tmax) * 400
			res, err := Run(Config{
				Protocol: v.Protocol, Core: v.coreFor(tmin, tmax), N: v.N,
				Horizon: duration, Trials: 1, Seed: 1,
			})
			if err != nil {
				return nil, fmt.Errorf("overhead %s tmax=%d: %w", v.Name, tmax, err)
			}
			out = append(out, OverheadPoint{
				Variant: v.Name, TMin: tmin, TMax: tmax,
				MsgsPerTick:        float64(res.Sent) / float64(duration),
				Sent:               res.Sent,
				FalselyInactivated: res.CoordInactivated > 0,
			})
		}
	}
	return out, nil
}

// DetectionPoint is one Q2 surface point: crash-to-suspicion latency
// distribution with a 95% CI on the mean.
type DetectionPoint struct {
	Variant          string
	TMin, TMax       core.Tick
	Trials           int
	Detected, Missed int
	MeanDelay, CI95  float64
	P50, P99, Max    float64
	// QuantRes is the delay sketch's bucket width: P50/P99 are bucket
	// lower edges, so each can read low by up to QuantRes. It is 1 (an
	// exact tick order statistic) unless the delay range exceeds the
	// sketch capacity and the buckets coarsen.
	QuantRes float64
	Bound    core.Tick
	Rounds   uint64
}

// SweepDetection regenerates the Q2 surface (detection-latency
// distribution) for every variant at each (tmin, tmax) point: delay
// jitter up to tmin/2, crash at 10·tmax plus up to tmax of jitter,
// horizon 22·tmax — cmd/hbsim's Q2 protocol at ensemble trial counts.
func SweepDetection(variants []Variant, times [][2]core.Tick, trials int, seed int64, workers int) ([]DetectionPoint, error) {
	var out []DetectionPoint
	for _, v := range variants {
		for _, tt := range times {
			tmin, tmax := tt[0], tt[1]
			cc := v.coreFor(tmin, tmax)
			res, err := Run(Config{
				Protocol: v.Protocol, Core: cc, N: v.N,
				Link:    netem.LinkConfig{MaxDelay: sim.Time(tmin) / 2},
				CrashAt: sim.Time(tmax) * 10, CrashJitter: sim.Time(tmax), Victim: 1,
				Horizon: sim.Time(tmax) * 22,
				Trials:  trials, Seed: seed, Workers: workers,
			})
			if err != nil {
				return nil, fmt.Errorf("detection %s (%d,%d): %w", v.Name, tmin, tmax, err)
			}
			p := DetectionPoint{
				Variant: v.Name, TMin: tmin, TMax: tmax,
				Trials: trials, Detected: res.Detected, Missed: res.Missed,
				Bound:  cc.CoordinatorDetectionBound() + cc.TMin,
				Rounds: res.Rounds,
			}
			if res.Detected > 0 {
				p.MeanDelay, p.CI95, _ = res.Delay.MeanCI95()
				p.P50, _ = res.DelayQ.Quantile(0.5)
				p.P99, _ = res.DelayQ.Quantile(0.99)
				p.QuantRes = res.DelayQ.Width()
				p.Max, _ = res.Delay.Max()
			}
			out = append(out, p)
		}
	}
	return out, nil
}

// ReliabilityPoint is one Q3 surface point: false-detection probability
// under loss with a Wilson 95% interval, plus mean time-to-failure.
type ReliabilityPoint struct {
	Variant            string
	TMin, TMax         core.Tick
	Loss               float64
	Trials             int
	FalseTrials        int
	PFalse             float64
	WilsonLo, WilsonHi float64
	MeanTTF, TTFCI95   float64
	Rounds             uint64
}

// SweepReliability regenerates the Q3 surface (false-detection
// probability vs loss rate) for every variant: fault-free lossy links,
// horizon 4000 — cmd/hbsim's Q3 protocol at ensemble trial counts.
func SweepReliability(variants []Variant, tmin, tmax core.Tick, losses []float64, trials int, seed int64, workers int) ([]ReliabilityPoint, error) {
	var out []ReliabilityPoint
	for _, v := range variants {
		for _, loss := range losses {
			res, err := Run(Config{
				Protocol: v.Protocol, Core: v.coreFor(tmin, tmax), N: v.N,
				Link:    netem.LinkConfig{LossProb: loss},
				Horizon: 4000,
				Trials:  trials, Seed: seed, Workers: workers,
			})
			if err != nil {
				return nil, fmt.Errorf("reliability %s loss=%g: %w", v.Name, loss, err)
			}
			p := ReliabilityPoint{
				Variant: v.Name, TMin: tmin, TMax: tmax, Loss: loss,
				Trials: trials, FalseTrials: res.FalseTrials,
				PFalse: float64(res.FalseTrials) / float64(trials),
				Rounds: res.Rounds,
			}
			ratio := stats.Ratio{Successes: res.FalseTrials, Trials: trials}
			p.WilsonLo, p.WilsonHi, _ = ratio.Wilson95()
			if res.FalseTrials > 0 {
				p.MeanTTF, p.TTFCI95, _ = res.TimeToFalse.MeanCI95()
			}
			out = append(out, p)
		}
	}
	return out, nil
}
