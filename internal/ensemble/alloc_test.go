package ensemble

import "testing"

// TestEnsembleStepAllocFree pins the 0-allocs-per-lockstep-round
// contract on the fast-RNG hot path: after engine construction, reset
// and stepRound touch only the preallocated SoA rows.
func TestEnsembleStepAllocFree(t *testing.T) {
	cfg, err := q3Config(256, 1).validate()
	if err != nil {
		t.Fatal(err)
	}
	eng := newEngine(cfg, 256)
	eng.reset(0, 256) // warm-up block
	for eng.stepRound() {
	}
	allocs := testing.AllocsPerRun(5, func() {
		eng.reset(0, 256)
		for eng.stepRound() {
		}
	})
	if allocs != 0 {
		t.Fatalf("lockstep rounds allocate: %v allocs per block run, want 0", allocs)
	}
}
