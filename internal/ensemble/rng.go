package ensemble

import (
	"math/bits"
	"math/rand"
)

// rngState is one trial's private random stream, in one of two modes:
//
//   - Exact: a *rand.Rand seeded with cfg.Seed + trial, the same source a
//     detector.Cluster would use for that trial. Draw-for-draw identical
//     to the simulator path; costs one ~5KB source allocation per trial,
//     so it is reserved for differential tests and small campaigns.
//   - Fast (default): a splittable counter-based splitmix64 stream keyed
//     on (seed, trial). Allocation-free and a few times faster; each
//     trial's counter starts at a mix64-scrambled position, so distinct
//     trials walk disjoint, uncorrelated windows of the splitmix64
//     sequence (pinned by TestRNGAdjacentStreamsIndependent) and
//     campaigns stay embarrassingly parallel and byte-identical at any
//     worker count. Not bitwise-comparable to math/rand, statistically
//     equivalent for Monte-Carlo use.
type rngState struct {
	state uint64
	exact *rand.Rand
}

// golden is 2^64/phi, the splitmix64 stream increment.
const golden = 0x9E3779B97F4A7C15

// mix64 is the splitmix64 output function.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// init keys the stream. Splitting is positional: the trial index offsets
// the pre-mixed seed, and the sum is mixed *again* before it becomes the
// counter start, so stream k is reachable without generating streams
// 0..k-1. The second mix64 is load-bearing: without it the counter start
// would be mix64(seed) + trial·golden, making trial t+1's stream the
// one-draw-shifted window of trial t's (next() advances by the same
// golden increment) — maximally correlated adjacent trials. Mixing
// scatters the starts, so two streams could only share draws if their
// mixed starts differed by an exact multiple of golden within a
// horizon's worth of draws (see TestRNGAdjacentStreamsIndependent).
func (r *rngState) init(seed, trial int64, exact bool) {
	if exact {
		if r.exact == nil {
			r.exact = rand.New(rand.NewSource(seed + trial))
		} else {
			r.exact.Seed(seed + trial)
		}
		return
	}
	r.exact = nil
	r.state = mix64(mix64(uint64(seed)) + uint64(trial)*golden)
}

//hbvet:noalloc
func (r *rngState) next() uint64 {
	r.state += golden
	return mix64(r.state)
}

// float64 returns a uniform draw in [0, 1) — the loss roll.
//
//hbvet:noalloc
func (r *rngState) float64() float64 {
	if r.exact != nil {
		return r.exact.Float64()
	}
	return float64(r.next()>>11) / (1 << 53)
}

// int63n returns a uniform draw in [0, n) — delay jitter and crash
// jitter. The fast path uses Lemire's multiply-shift bound (the tiny
// modulo bias at protocol-sized n is irrelevant and rejection sampling
// would make draw count data-dependent).
//
//hbvet:noalloc
func (r *rngState) int63n(n int64) int64 {
	if r.exact != nil {
		return r.exact.Int63n(n)
	}
	hi, _ := bits.Mul64(r.next(), uint64(n))
	return int64(hi)
}
