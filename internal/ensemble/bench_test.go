package ensemble

import (
	"testing"

	"repro/internal/detector"
	"repro/internal/scenario"
)

// BenchmarkEnsembleThroughput measures trials/sec on the Q3
// false-detection workload (binary {2,16}, 10% loss, horizon 4000) at
// workers=1 — the per-core number the ≥10x acceptance criterion is
// stated against. Compare with BenchmarkScenarioBaseline below.
func BenchmarkEnsembleThroughput(b *testing.B) {
	const trials = 2048
	cfg := q3Config(trials, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(trials)*float64(b.N)/b.Elapsed().Seconds(), "trials/sec")
}

// BenchmarkScenarioBaseline runs the identical workload through the
// per-trial simulator path (scenario.MeasureReliability) — the oracle
// the ensemble is pinned against and the baseline for its speedup.
func BenchmarkScenarioBaseline(b *testing.B) {
	const trials = 64
	cfg := q3Config(trials, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := scenario.MeasureReliability(scenario.ReliabilityConfig{
			Cluster: detector.ClusterConfig{
				Protocol: cfg.Protocol, Core: cfg.Core, N: cfg.N,
			},
			LossProb: cfg.Link.LossProb,
			Horizon:  cfg.Horizon,
			Trials:   trials,
			Seed:     cfg.Seed,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(trials)*float64(b.N)/b.Elapsed().Seconds(), "trials/sec")
}
