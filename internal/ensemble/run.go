package ensemble

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Protocol aliases detector.Protocol: the ensemble covers the same
// variant family the cluster assembler does.
type Protocol = detector.Protocol

// Protocol variants, re-exported for callers that only import ensemble.
const (
	ProtocolBinary    = detector.ProtocolBinary
	ProtocolStatic    = detector.ProtocolStatic
	ProtocolExpanding = detector.ProtocolExpanding
	ProtocolDynamic   = detector.ProtocolDynamic
)

// Config describes one Monte-Carlo campaign: Trials independent runs of
// one protocol configuration under one link model, with an optional
// crash injection (the Q2 detection workload) on top of the always-on
// false-detection bookkeeping (the Q3 reliability workload).
type Config struct {
	// Protocol selects the variant; ProtocolBinary forces N to 1.
	Protocol Protocol
	// Core carries tmin/tmax and the TwoPhase/Revised/Fixed variant flags.
	Core core.Config
	// N is the number of members (participants for joining protocols).
	N int
	// Link is the loss/delay model. DupProb and Down must be zero, and
	// MaxDelay < TMin so per-link in-flight traffic stays bounded (the
	// papers' timing analyses assume 2·delay < tmin anyway).
	Link netem.LinkConfig
	// Trials is the number of independent trials.
	Trials int
	// Seed is the campaign base seed; trial i uses Seed + i, matching
	// scenario.RunCampaign's per-trial seeding.
	Seed int64
	// Horizon is the per-trial simulated duration in ticks.
	Horizon sim.Time
	// Victim, when non-zero, is the member crashed at CrashAt plus a
	// uniform [0, CrashJitter) draw — scenario.MeasureDetection's shape.
	Victim      core.ProcID
	CrashAt     sim.Time
	CrashJitter sim.Time
	// Exact selects per-trial math/rand streams, verdict-identical to
	// the detector/scenario path (differential testing); the default
	// fast mode uses allocation-free splitmix64 counter streams.
	Exact bool
	// Workers shards the trial space by contiguous blocks; results are
	// byte-identical at any worker count. 0 means 1.
	Workers int
	// Block is the trials-per-block claim unit (default 4096).
	Block int
	// Record keeps per-trial Outcomes (costs 40B/trial; differential
	// tests and small campaigns only).
	Record bool
}

// Outcome is one trial's verdict set.
type Outcome struct {
	// Suspected reports p[0] suspecting a member; SuspectAt is the tick
	// of the first suspicion.
	Suspected bool
	SuspectAt core.Tick
	// CrashedAt is the resolved crash tick (base + jitter); -1 when the
	// trial had no crash injection.
	CrashedAt core.Tick
	// False reports a non-voluntary inactivation anywhere; FalseAt is
	// the first one's tick.
	False   bool
	FalseAt core.Tick
	// Sent is the trial's total message count.
	Sent uint64
}

// Result aggregates a campaign. All aggregates are byte-identical for a
// given (Config minus Workers): block partials merge in block order and
// sketch merges are exact integer adds.
type Result struct {
	Trials int
	// Rounds is the total number of coordinator rounds processed — the
	// lockstep work unit behind trials/sec throughput numbers.
	Rounds uint64
	// Sent is the total message count across trials.
	Sent uint64

	// Detection workload (Victim set): Detected counts trials whose
	// coordinator suspected after the crash was injected; Delay holds
	// suspicion_tick - crash_tick for those trials, with DelayQ the
	// unit-bucket quantile sketch over the same values.
	Detected int
	Missed   int
	Delay    stats.Welford
	DelayQ   *stats.QuantileSketch

	// Reliability workload: FalseTrials counts trials with any
	// non-voluntary inactivation; TimeToFalse/TimeToFalseQ aggregate the
	// first such tick.
	FalseTrials  int
	TimeToFalse  stats.Welford
	TimeToFalseQ *stats.QuantileSketch

	// CoordInactivated counts trials where p[0] itself inactivated —
	// MeasureOverhead's FalselyInactivated flag, per trial.
	CoordInactivated int

	// Outcomes holds per-trial verdicts when Config.Record is set.
	Outcomes []Outcome
}

// Validate checks cfg and returns the resolved copy (defaults applied).
func (cfg Config) validate() (Config, error) {
	switch cfg.Protocol {
	case ProtocolBinary:
		cfg.N = 1
	case ProtocolStatic, ProtocolExpanding, ProtocolDynamic:
	default:
		return cfg, fmt.Errorf("ensemble: unknown protocol %v", cfg.Protocol)
	}
	if err := cfg.Core.Validate(); err != nil {
		return cfg, err
	}
	if cfg.N < 1 {
		return cfg, fmt.Errorf("ensemble: n %d < 1", cfg.N)
	}
	if cfg.Link.LossProb < 0 || cfg.Link.LossProb > 1 {
		return cfg, fmt.Errorf("ensemble: loss probability %v out of [0,1]", cfg.Link.LossProb)
	}
	if cfg.Link.MinDelay < 0 || cfg.Link.MaxDelay < cfg.Link.MinDelay {
		return cfg, fmt.Errorf("ensemble: bad delay range [%d,%d]", cfg.Link.MinDelay, cfg.Link.MaxDelay)
	}
	if cfg.Link.DupProb != 0 || cfg.Link.Down {
		return cfg, fmt.Errorf("ensemble: duplication and down links are not vectorized; use the scenario path")
	}
	if int64(cfg.Link.MaxDelay) >= int64(cfg.Core.TMin) {
		return cfg, fmt.Errorf("ensemble: MaxDelay %d must stay below TMin %d (bounded in-flight slots)",
			cfg.Link.MaxDelay, cfg.Core.TMin)
	}
	if cfg.Trials < 1 {
		return cfg, fmt.Errorf("ensemble: trials %d < 1", cfg.Trials)
	}
	if cfg.Horizon < 1 {
		return cfg, fmt.Errorf("ensemble: horizon %d < 1", cfg.Horizon)
	}
	if int64(cfg.Horizon) >= maxTick || int64(cfg.CrashAt)+int64(cfg.CrashJitter) >= maxTick {
		return cfg, fmt.Errorf("ensemble: ticks beyond %d overflow the packed event keys", maxTick)
	}
	if cfg.Victim != 0 {
		if cfg.Victim < 1 || int(cfg.Victim) > cfg.N {
			return cfg, fmt.Errorf("ensemble: victim %d out of members [1,%d]", cfg.Victim, cfg.N)
		}
		if cfg.CrashAt < 0 || cfg.CrashJitter < 0 {
			return cfg, fmt.Errorf("ensemble: negative crash time or jitter")
		}
	} else if cfg.CrashAt != 0 || cfg.CrashJitter != 0 {
		return cfg, fmt.Errorf("ensemble: crash time without a victim")
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.Block < 1 {
		cfg.Block = 4096
	}
	return cfg, nil
}

// blockResult is one contiguous trial block's partial aggregate. Floats
// (Welford partials) merge in block order; everything else is integer.
type blockResult struct {
	detected, missed int
	falsec           int
	coordInact       int
	sent             uint64
	rounds           uint64
	delay            stats.Welford
	ttf              stats.Welford
}

// sketchCap bounds per-worker sketch memory; wider ranges coarsen the
// buckets instead of growing them.
const sketchCap = 1 << 16

// newSketches builds the per-worker (delay, time-to-false) sketch pair
// for cfg. Unit-width buckets — exact integer quantiles — whenever the
// range fits sketchCap.
func newSketches(cfg Config) (delay, ttf *stats.QuantileSketch) {
	delayHi := int64(cfg.Core.CoordinatorDetectionBound()) + int64(cfg.Core.TMax) + 2*int64(cfg.Link.MaxDelay) + 2
	delay, _ = stats.NewQuantileSketch(0, float64(delayHi), int(min(delayHi, sketchCap)))
	ttfHi := int64(cfg.Horizon) + 1
	ttf, _ = stats.NewQuantileSketch(0, float64(ttfHi), int(min(ttfHi, sketchCap)))
	return delay, ttf
}

// collect folds the finished block into out and the worker's sketches,
// in ascending trial order.
func (e *engine) collect(out *blockResult, delayQ, ttfQ *stats.QuantileSketch, outcomes []Outcome) {
	for t := 0; t < e.trials; t++ {
		out.sent += e.sent[t]
		out.rounds += e.rounds[t]
		if e.tflags[t]&tfCoordInactive != 0 {
			out.coordInact++
		}
		suspected := e.suspectAt[t] != inert
		if e.crashTick[t] != inert {
			if suspected {
				out.detected++
				d := float64(e.suspectAt[t] - e.crashTick[t])
				out.delay.Add(d)
				delayQ.Add(d)
			} else {
				out.missed++
			}
		}
		failed := e.falseAt[t] != inert
		if failed {
			out.falsec++
			v := float64(e.falseAt[t])
			out.ttf.Add(v)
			ttfQ.Add(v)
		}
		if outcomes != nil {
			outcomes[e.first+t] = Outcome{
				Suspected: suspected,
				SuspectAt: core.Tick(e.suspectAt[t]),
				CrashedAt: core.Tick(e.crashTick[t]),
				False:     failed,
				FalseAt:   core.Tick(e.falseAt[t]),
				Sent:      e.sent[t],
			}
		}
	}
}

// Run executes the campaign: workers claim contiguous trial blocks from
// an atomic cursor, run each block's trials to their horizon with a
// private engine, and park partial aggregates in per-block slots; after
// the barrier the partials merge in block order. The aggregate is
// byte-identical at any worker count (same discipline as internal/fleet
// and scenario.RunCampaign).
func Run(cfg Config) (*Result, error) {
	cfg, err := cfg.validate()
	if err != nil {
		return nil, err
	}
	nBlocks := (cfg.Trials + cfg.Block - 1) / cfg.Block
	blocks := make([]blockResult, nBlocks)
	workers := min(cfg.Workers, nBlocks)
	delayQs := make([]*stats.QuantileSketch, workers)
	ttfQs := make([]*stats.QuantileSketch, workers)
	var outcomes []Outcome
	if cfg.Record {
		outcomes = make([]Outcome, cfg.Trials)
	}

	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			eng := newEngine(cfg, cfg.Block)
			delayQ, ttfQ := newSketches(cfg)
			delayQs[w], ttfQs[w] = delayQ, ttfQ
			for {
				b := int(cursor.Add(1)) - 1
				if b >= nBlocks {
					return
				}
				lo := b * cfg.Block
				hi := min(lo+cfg.Block, cfg.Trials)
				eng.reset(lo, hi-lo)
				for eng.stepRound() {
				}
				eng.collect(&blocks[b], delayQ, ttfQ, outcomes)
			}
		}(w)
	}
	wg.Wait()

	res := &Result{Trials: cfg.Trials, Outcomes: outcomes}
	res.DelayQ, res.TimeToFalseQ = newSketches(cfg)
	for b := range blocks {
		res.Sent += blocks[b].sent
		res.Rounds += blocks[b].rounds
		res.Detected += blocks[b].detected
		res.Missed += blocks[b].missed
		res.FalseTrials += blocks[b].falsec
		res.CoordInactivated += blocks[b].coordInact
		res.Delay.Merge(blocks[b].delay)
		res.TimeToFalse.Merge(blocks[b].ttf)
	}
	for w := 0; w < workers; w++ {
		if err := res.DelayQ.Merge(delayQs[w]); err != nil {
			return nil, err
		}
		if err := res.TimeToFalseQ.Merge(ttfQs[w]); err != nil {
			return nil, err
		}
	}
	return res, nil
}
