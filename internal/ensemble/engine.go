// Package ensemble is the vectorized Monte-Carlo engine: a trial is a row
// of struct-of-arrays state, not a simulator. A block of independent
// trials advances round-by-round in lockstep — loss rolls, NextWait
// acceleration, watchdog expiry and crash/suspicion bookkeeping evaluated
// as tight batch loops with zero allocations per step — at 1-2 orders of
// magnitude more trials per core than the event-driven
// detector/scenario path, which stays on as the differential oracle.
//
// # Determinism contract
//
// The engine replays the exact observable behaviour of a
// detector.Cluster driven by scenario.MeasureDetection /
// MeasureReliability / MeasureOverhead: with Exact RNG mode and the same
// per-trial seed (cfg.Seed + trial), every trial produces the same
// per-trial verdict (suspicion tick, non-voluntary inactivation tick,
// message count) as the full simulator. That works because the
// simulator's nondeterminism is fully captured by two artifacts the
// engine reproduces bit-for-bit:
//
//   - RNG draw order. netem.Network draws one Float64 per Send (always,
//     unless the link is Down) and one Int63n per delivery when
//     MaxDelay > MinDelay; MeasureDetection draws one Int63n of crash
//     jitter after Cluster.Start. Draws happen in event-execution order,
//     so replaying events in the simulator's order replays the stream.
//   - Event order. internal/sim orders by (time, seq) with seq assigned
//     at Schedule time. The engine keeps an explicit (at, seq) pair per
//     pending-event slot — packed into one uint64 key (at<<seqBits | seq)
//     so selecting the next event is a single-word min-scan — and assigns
//     seqs from a per-trial counter at the same moments the simulator
//     would call Schedule. The §6.1 receive-priority fix
//     (core.Config.Fixed) is a one-shot re-queue of a due timer at the
//     same tick with a fresh seq — exactly the zero-delay hop
//     detector.Node uses.
//
// Pending events per trial are a fixed set of slots, not a queue: one
// round timer, one crash injection, and per member one watchdog, one
// join-resend timer, one inbound p[0]->member delivery and two
// member->p[0] deliveries. The slot counts are sufficient because
// validation requires MaxDelay < TMin: consecutive sends on any link are
// at least TMin apart, so at most one beat (plus, for joiners, one
// solicitation) is in flight per direction.
package ensemble

import (
	"repro/internal/core"
)

// Per-trial flag bits (tflags).
const (
	tfCoordInactive uint8 = 1 << iota // p[0] suspected someone and stopped
	tfRoundHop                        // round timer took its §6.1 hop
	tfDone                            // no more events inside the bound
)

// Per-member flag bits (mflags).
const (
	mfKnown     uint8 = 1 << iota // coordinator counts this member
	mfJoined                      // participant saw p[0]'s acknowledgement
	mfRcvd                        // beat received this round (coordinator view)
	mfCrashed                     // member crashed (voluntary inactivation)
	mfInactive                    // member self-inactivated (watchdog)
	mfWatchHop                    // watchdog took its §6.1 hop
	mfResendHop                   // join-resend timer took its §6.1 hop
)

// Candidate event kinds returned by pick.
const (
	kNone uint8 = iota
	kRound
	kWatch
	kResend
	kDown
	kUp0
	kUp1
	kCrash
)

// inert marks an unset per-trial tick (crash, suspicion, failure).
const inert = int64(-1)

// Event-slot keys pack (at, seq) into one uint64 — uint64(at)<<seqBits |
// seq — so (time, seq) order is plain integer order and pick is a
// single-word min-scan. seqBits leaves 42 bits of tick range; validation
// caps ticks at maxTick and nextSeq panics before a seq can wrap into
// the tick field.
const (
	seqBits  = 22
	seqMask  = uint64(1)<<seqBits - 1
	maxTick  = int64(1) << 40
	inertKey = ^uint64(0) // empty slot: loses every min-scan
)

// evkey packs an (at, seq) pair into its order-preserving key.
func evkey(at int64, seq uint64) uint64 {
	return uint64(at)<<seqBits | seq
}

// Per-member slot offsets inside a trial's contiguous key row. A row is
// [round, then 5 slots per member]: pick scans it as one cache-friendly
// streaming min over stride = 1 + 5n words.
const (
	sWatch = iota
	sResend
	sDown
	sUp0
	sUp1
	slotsPerMember
)

// engine holds one worker's struct-of-arrays trial block. All slices are
// sized once at construction and reused across blocks; after the first
// reset the steady-state step path performs no allocations.
type engine struct {
	// protocol constants, resolved from Config
	cc        core.Config
	joining   bool // expanding/dynamic membership
	fixed     bool // §6.1 receive priority (core.Fixed)
	n         int  // members per trial
	loss      float64
	minD      int64
	maxD      int64
	horizon   int64
	crashBase int64 // < 0: no crash injection
	jitter    int64
	victim    int // member index of the crash victim
	tmin      int64
	tmax      int64
	respBound int64
	joinBound int64
	exact     bool
	seed      int64

	cap    int // trial capacity
	trials int // active trials this block
	first  int // global index of trial 0 in this block
	live   int

	// per-trial state
	rng       []rngState
	seqc      []uint64
	tflags    []uint8
	crashDue  []int64 // pending crash injection; inert when absent or consumed
	crashTick []int64 // resolved crash tick (base + jitter); inert when no crash
	sent      []uint64
	rounds    []uint64
	suspectAt []int64
	falseAt   []int64

	// keys holds every pending-event slot as packed (at, seq) keys, one
	// contiguous row of stride words per trial: [round timer, then per
	// member watch/resend/down/up0/up1]. Row-contiguity is what makes
	// pick's min-scan stream a couple of cache lines instead of touching
	// six arrays.
	stride int // 1 + slotsPerMember*n
	keys   []uint64

	// per-trial x member state (index t*n + m)
	tm     []int64
	mflags []uint8
}

// newEngine builds a worker engine for up to capacity trials per block.
// cfg must already be validated and defaulted by Run.
func newEngine(cfg Config, capacity int) *engine {
	n := cfg.N
	e := &engine{
		cc:        cfg.Core,
		joining:   cfg.Protocol == ProtocolExpanding || cfg.Protocol == ProtocolDynamic,
		fixed:     cfg.Core.Fixed,
		n:         n,
		loss:      cfg.Link.LossProb,
		minD:      int64(cfg.Link.MinDelay),
		maxD:      int64(cfg.Link.MaxDelay),
		horizon:   int64(cfg.Horizon),
		crashBase: inert,
		jitter:    int64(cfg.CrashJitter),
		victim:    int(cfg.Victim) - 1,
		tmin:      int64(cfg.Core.TMin),
		tmax:      int64(cfg.Core.TMax),
		respBound: int64(cfg.Core.ResponderBound()),
		joinBound: int64(cfg.Core.JoinerBound()),
		exact:     cfg.Exact,
		seed:      cfg.Seed,
		cap:       capacity,

		rng:       make([]rngState, capacity),
		seqc:      make([]uint64, capacity),
		tflags:    make([]uint8, capacity),
		crashDue:  make([]int64, capacity),
		crashTick: make([]int64, capacity),
		sent:      make([]uint64, capacity),
		rounds:    make([]uint64, capacity),
		suspectAt: make([]int64, capacity),
		falseAt:   make([]int64, capacity),

		stride: 1 + slotsPerMember*n,
		keys:   make([]uint64, capacity*(1+slotsPerMember*n)),

		tm:     make([]int64, capacity*n),
		mflags: make([]uint8, capacity*n),
	}
	if cfg.Victim != 0 {
		e.crashBase = int64(cfg.CrashAt)
	}
	return e
}

// nextSeq mirrors sim.Simulator's Schedule-time sequence assignment. A
// trial that exhausts the seq field of the packed key panics rather than
// silently corrupting event order (2^22 events per trial).
//
// slot returns the key index of member m's slot s in trial t's row; the
// row's word 0 is the coordinator round timer.
//
//hbvet:noalloc
func (e *engine) slot(t, m, s int) int {
	return t*e.stride + 1 + slotsPerMember*m + s
}

//hbvet:noalloc
func (e *engine) nextSeq(t int) uint64 {
	e.seqc[t]++
	if e.seqc[t] >= seqMask {
		panic("ensemble: per-trial event sequence overflow")
	}
	return e.seqc[t]
}

// reset initialises trials [first, first+count) and replays each trial's
// Cluster.Start: the coordinator first (round timer, then the revised
// variant's immediate broadcast), then participants in ascending ID order
// (fixed membership arms watchdogs; joining membership sends the first
// solicitation and arms resend + give-up timers), then the
// MeasureDetection crash-jitter draw. Exact RNG mode allocates one
// math/rand source per trial; the fast counter-stream mode allocates
// nothing.
func (e *engine) reset(first, count int) {
	if count > e.cap {
		panic("ensemble: block larger than engine capacity")
	}
	e.first = first
	e.trials = count
	e.live = count
	for t := 0; t < count; t++ {
		e.rng[t].init(e.seed, int64(first+t), e.exact)
		e.seqc[t] = 0
		e.tflags[t] = 0
		e.crashDue[t] = inert
		e.crashTick[t] = inert
		e.sent[t] = 0
		e.rounds[t] = 0
		e.suspectAt[t] = inert
		e.falseAt[t] = inert
		base := t * e.n
		row := e.keys[t*e.stride : (t+1)*e.stride]
		for p := range row {
			row[p] = inertKey
		}
		for m := 0; m < e.n; m++ {
			i := base + m
			e.tm[i] = e.tmax
			if e.joining {
				e.mflags[i] = 0
			} else {
				// Fixed members start known with rcvd=true: the first
				// round is a grace round (see core.NewCoordinator).
				e.mflags[i] = mfKnown | mfRcvd
			}
		}
		// Coordinator.Start: SetTimer(Round, tmax) first, then the
		// revised variant's immediate broadcast in ascending ID order.
		e.keys[t*e.stride] = evkey(e.tmax, e.nextSeq(t))
		if e.cc.Revised && !e.joining {
			for m := 0; m < e.n; m++ {
				e.sendDown(t, m, 0)
			}
		}
		// Participant/Responder.Start in ascending ID order.
		for m := 0; m < e.n; m++ {
			if e.joining {
				// SendBeat(solicit), SetTimer(JoinResend, tmin),
				// SetTimer(Expiry, JoinerBound) — in that action order.
				e.sendUp(t, m, 0)
				e.keys[e.slot(t, m, sResend)] = evkey(e.tmin, e.nextSeq(t))
				e.keys[e.slot(t, m, sWatch)] = evkey(e.joinBound, e.nextSeq(t))
			} else {
				e.keys[e.slot(t, m, sWatch)] = evkey(e.respBound, e.nextSeq(t))
			}
		}
		// MeasureDetection resolves the crash tick after Start, before
		// any event runs: one Int63n draw when jitter is configured.
		if e.crashBase >= 0 {
			at := e.crashBase
			if e.jitter > 0 {
				at += e.rng[t].int63n(e.jitter)
			}
			e.crashDue[t] = at
			e.crashTick[t] = at
		}
	}
}

// sendDown rolls one p[0]->member beat: one Float64 loss roll per Send
// (netem's unconditional draw), then a delay draw only when the link
// jitters. A surviving beat occupies the member's single inbound slot.
//
//hbvet:noalloc
func (e *engine) sendDown(t, m int, now int64) {
	e.sent[t]++
	r := &e.rng[t]
	lost := r.float64() < e.loss
	if lost {
		return
	}
	d := e.minD
	if e.maxD > e.minD {
		d += r.int63n(e.maxD - e.minD + 1)
	}
	i := e.slot(t, m, sDown)
	if e.keys[i] != inertKey {
		panic("ensemble: down-slot overflow (MaxDelay too large for TMin)")
	}
	e.keys[i] = evkey(now+d, e.nextSeq(t))
}

// sendUp rolls one member->p[0] beat (reply or join solicitation) into a
// free upstream slot.
//
//hbvet:noalloc
func (e *engine) sendUp(t, m int, now int64) {
	e.sent[t]++
	r := &e.rng[t]
	lost := r.float64() < e.loss
	if lost {
		return
	}
	d := e.minD
	if e.maxD > e.minD {
		d += r.int63n(e.maxD - e.minD + 1)
	}
	i := e.slot(t, m, sUp0)
	if e.keys[i] != inertKey {
		i++
		if e.keys[i] != inertKey {
			panic("ensemble: up-slot overflow (MaxDelay too large for TMin)")
		}
	}
	e.keys[i] = evkey(now+d, e.nextSeq(t))
}

// pick selects trial t's next event by the simulator's (time, seq) order.
// The crash injection behaves as an event with infinite seq at its tick:
// scenario.MeasureDetection runs every event at or before the crash tick
// (even past the horizon), then crashes the victim.
//
//hbvet:noalloc
func (e *engine) pick(t int) (kind uint8, mem int) {
	row := e.keys[t*e.stride : (t+1)*e.stride]
	best := row[0]
	kind = kRound
	for m := 0; m < e.n; m++ {
		o := 1 + slotsPerMember*m
		if k := row[o+sWatch]; k < best {
			best, kind, mem = k, kWatch, m
		}
		if k := row[o+sResend]; k < best {
			best, kind, mem = k, kResend, m
		}
		if k := row[o+sDown]; k < best {
			best, kind, mem = k, kDown, m
		}
		if k := row[o+sUp0]; k < best {
			best, kind, mem = k, kUp0, m
		}
		if k := row[o+sUp1]; k < best {
			best, kind, mem = k, kUp1, m
		}
	}
	// A pending crash has infinite seq at its tick: it loses same-tick
	// ties but beats any strictly later event — and an all-inert scan
	// (best == inertKey) by construction.
	if c := e.crashDue[t]; c != inert && uint64(c) < best>>seqBits {
		return kCrash, 0
	}
	// Events run while they are at or before the bound: the horizon,
	// stretched to the crash tick while a later crash is still pending.
	bound := e.horizon
	if c := e.crashDue[t]; c != inert && c > bound {
		bound = c
	}
	if best == inertKey || int64(best>>seqBits) > bound {
		return kNone, 0
	}
	return kind, mem
}

// stepTrial advances trial t through one coordinator round: every due
// event in (time, seq) order up to and including the next round-timer
// fire. Returns false when the trial has no further events inside its
// bound.
//
//hbvet:noalloc
func (e *engine) stepTrial(t int) bool {
	for {
		kind, m := e.pick(t)
		switch kind {
		case kNone:
			return false
		case kRound:
			// §6.1 receive priority: a due timer yields one zero-delay
			// hop (fresh seq, same tick) so same-instant deliveries run
			// first — exactly detector.Node's arm/fire split.
			ki := t * e.stride
			if e.fixed && e.tflags[t]&tfRoundHop == 0 {
				e.tflags[t] |= tfRoundHop
				e.keys[ki] = e.keys[ki]&^seqMask | e.nextSeq(t)
				continue
			}
			e.tflags[t] &^= tfRoundHop
			e.fireRound(t, int64(e.keys[ki]>>seqBits))
			return true
		case kWatch:
			i := t*e.n + m
			ki := e.slot(t, m, sWatch)
			if e.fixed && e.mflags[i]&mfWatchHop == 0 {
				e.mflags[i] |= mfWatchHop
				e.keys[ki] = e.keys[ki]&^seqMask | e.nextSeq(t)
				continue
			}
			e.mflags[i] &^= mfWatchHop
			e.fireWatch(t, m, int64(e.keys[ki]>>seqBits))
		case kResend:
			i := t*e.n + m
			ki := e.slot(t, m, sResend)
			if e.fixed && e.mflags[i]&mfResendHop == 0 {
				e.mflags[i] |= mfResendHop
				e.keys[ki] = e.keys[ki]&^seqMask | e.nextSeq(t)
				continue
			}
			e.mflags[i] &^= mfResendHop
			e.fireResend(t, m, int64(e.keys[ki]>>seqBits))
		case kDown:
			ki := e.slot(t, m, sDown)
			at := int64(e.keys[ki] >> seqBits)
			e.keys[ki] = inertKey
			e.fireDown(t, m, at)
		case kUp0:
			ki := e.slot(t, m, sUp0)
			at := int64(e.keys[ki] >> seqBits)
			e.keys[ki] = inertKey
			e.fireUp(t, m, at)
		case kUp1:
			ki := e.slot(t, m, sUp1)
			at := int64(e.keys[ki] >> seqBits)
			e.keys[ki] = inertKey
			e.fireUp(t, m, at)
		case kCrash:
			at := e.crashDue[t]
			e.crashDue[t] = inert
			e.fireCrash(t, at)
		}
	}
}

// stepTrialBinary is stepTrial specialised for single-member fixed
// membership without the §6.1 hop — the binary/revised/two-phase Q2/Q3
// workloads. The trial's event slots live in registers across the whole
// round instead of being re-scanned from memory per event; the protocol
// logic is the same inlined for member 0 (i = t; the resend slot stays
// inert), and the differential tests drive this path for every binary
// variant.
//
//hbvet:noalloc
func (e *engine) stepTrialBinary(t int) bool {
	base := t * e.stride
	round := e.keys[base]
	watch := e.keys[base+1+sWatch]
	down := e.keys[base+1+sDown]
	up0 := e.keys[base+1+sUp0]
	up1 := e.keys[base+1+sUp1]
	crash := e.crashDue[t]
	fired := false

loop:
	for {
		best := round
		kind := kRound
		if watch < best {
			best, kind = watch, kWatch
		}
		if down < best {
			best, kind = down, kDown
		}
		if up0 < best {
			best, kind = up0, kUp0
		}
		if up1 < best {
			best, kind = up1, kUp1
		}
		if crash != inert && uint64(crash) < best>>seqBits {
			crash = inert
			if e.mflags[t]&(mfCrashed|mfInactive) == 0 {
				e.mflags[t] |= mfCrashed
				watch = inertKey
			}
			continue
		}
		bound := e.horizon
		if crash != inert && crash > bound {
			bound = crash
		}
		if best == inertKey || int64(best>>seqBits) > bound {
			break loop
		}
		now := int64(best >> seqBits)
		switch kind {
		case kRound:
			e.rounds[t]++
			tm, ok := e.cc.NextWait(core.Tick(e.tm[t]), e.mflags[t]&mfRcvd != 0)
			e.tm[t] = int64(tm)
			e.mflags[t] &^= mfRcvd
			if !ok {
				e.tflags[t] |= tfCoordInactive
				if e.suspectAt[t] == inert {
					e.suspectAt[t] = now
				}
				if e.falseAt[t] == inert {
					e.falseAt[t] = now
				}
				round = inertKey
				fired = true
				break loop
			}
			// sendDown for member 0.
			e.sent[t]++
			r := &e.rng[t]
			if r.float64() >= e.loss {
				d := e.minD
				if e.maxD > e.minD {
					d += r.int63n(e.maxD - e.minD + 1)
				}
				if down != inertKey {
					panic("ensemble: down-slot overflow (MaxDelay too large for TMin)")
				}
				down = evkey(now+d, e.nextSeq(t))
			}
			round = evkey(now+int64(tm), e.nextSeq(t))
			fired = true
			break loop
		case kWatch:
			watch = inertKey
			if e.mflags[t]&(mfCrashed|mfInactive) == 0 {
				e.mflags[t] |= mfInactive
				if e.falseAt[t] == inert {
					e.falseAt[t] = now
				}
			}
		case kDown:
			down = inertKey
			if e.mflags[t]&(mfCrashed|mfInactive) == 0 {
				// sendUp (reply) for member 0, then the watchdog rearm.
				e.sent[t]++
				r := &e.rng[t]
				if r.float64() >= e.loss {
					d := e.minD
					if e.maxD > e.minD {
						d += r.int63n(e.maxD - e.minD + 1)
					}
					k := evkey(now+d, e.nextSeq(t))
					if up0 == inertKey {
						up0 = k
					} else if up1 == inertKey {
						up1 = k
					} else {
						panic("ensemble: up-slot overflow (MaxDelay too large for TMin)")
					}
				}
				watch = evkey(now+e.respBound, e.nextSeq(t))
			}
		case kUp0, kUp1:
			if kind == kUp0 {
				up0 = inertKey
			} else {
				up1 = inertKey
			}
			if e.tflags[t]&tfCoordInactive == 0 {
				e.mflags[t] |= mfRcvd
				e.tm[t] = e.tmax
			}
		}
	}

	e.keys[base] = round
	e.keys[base+1+sWatch] = watch
	e.keys[base+1+sDown] = down
	e.keys[base+1+sUp0] = up0
	e.keys[base+1+sUp1] = up1
	e.crashDue[t] = crash
	return fired
}

// fireRound is Coordinator.OnTimer(TimerRound): apply the acceleration
// rule per member in ascending ID order; on any failure suspect and
// inactivate p[0] (round timer not re-armed), otherwise beat every member
// and re-arm with the minimum waiting time.
//
//hbvet:noalloc
func (e *engine) fireRound(t int, now int64) {
	e.rounds[t]++
	base := t * e.n
	suspected := false
	next := e.tmax // round length with no members: idle at tmax
	for m := 0; m < e.n; m++ {
		i := base + m
		if e.mflags[i]&mfKnown == 0 {
			continue
		}
		tm, ok := e.cc.NextWait(core.Tick(e.tm[i]), e.mflags[i]&mfRcvd != 0)
		if !ok {
			suspected = true
		}
		e.tm[i] = int64(tm)
		e.mflags[i] &^= mfRcvd
		if int64(tm) < next {
			next = int64(tm)
		}
	}
	if suspected {
		e.tflags[t] |= tfCoordInactive
		if e.suspectAt[t] == inert {
			e.suspectAt[t] = now
		}
		if e.falseAt[t] == inert {
			e.falseAt[t] = now // Inactivate(voluntary=false) on p[0]
		}
		e.keys[t*e.stride] = inertKey
		return
	}
	for m := 0; m < e.n; m++ {
		if e.mflags[base+m]&mfKnown != 0 {
			e.sendDown(t, m, now)
		}
	}
	e.keys[t*e.stride] = evkey(now+next, e.nextSeq(t))
}

// fireDown is the member's OnBeat for a beat from p[0]: reply, push out
// the watchdog, and (first time, joining protocols) leave the join phase.
//
//hbvet:noalloc
func (e *engine) fireDown(t, m int, now int64) {
	i := t*e.n + m
	if e.mflags[i]&(mfCrashed|mfInactive) != 0 {
		return
	}
	// SendBeat(reply) then SetTimer(Expiry, ResponderBound), in action
	// order; joining first-acknowledgement additionally cancels the
	// resend timer.
	e.sendUp(t, m, now)
	e.keys[e.slot(t, m, sWatch)] = evkey(now+e.respBound, e.nextSeq(t))
	e.mflags[i] &^= mfWatchHop
	if e.joining && e.mflags[i]&mfJoined == 0 {
		e.mflags[i] |= mfJoined
		e.keys[e.slot(t, m, sResend)] = inertKey
	}
}

// fireUp is Coordinator.OnBeat for a member beat: mark received and reset
// its waiting budget; under joining membership an unknown sender is
// admitted silently (it learns from the next broadcast).
//
//hbvet:noalloc
func (e *engine) fireUp(t, m int, now int64) {
	if e.tflags[t]&tfCoordInactive != 0 {
		return
	}
	i := t*e.n + m
	if e.mflags[i]&mfKnown == 0 {
		if !e.joining {
			return // fixed membership ignores strangers (unreachable)
		}
		e.mflags[i] |= mfKnown
	}
	e.mflags[i] |= mfRcvd
	e.tm[i] = e.tmax
}

// fireWatch is the member watchdog: Inactivate(voluntary=false), joining
// protocols also cancel the resend timer.
//
//hbvet:noalloc
func (e *engine) fireWatch(t, m int, now int64) {
	i := t*e.n + m
	e.keys[e.slot(t, m, sWatch)] = inertKey
	if e.mflags[i]&(mfCrashed|mfInactive) != 0 {
		return
	}
	e.mflags[i] |= mfInactive
	e.keys[e.slot(t, m, sResend)] = inertKey
	if e.falseAt[t] == inert {
		e.falseAt[t] = now
	}
}

// fireResend is Participant.OnTimer(TimerJoinResend): re-solicit every
// tmin until acknowledged.
//
//hbvet:noalloc
func (e *engine) fireResend(t, m int, now int64) {
	i := t*e.n + m
	if e.mflags[i]&(mfCrashed|mfInactive) != 0 || e.mflags[i]&mfJoined != 0 {
		e.keys[e.slot(t, m, sResend)] = inertKey
		return
	}
	e.sendUp(t, m, now)
	e.keys[e.slot(t, m, sResend)] = evkey(now+e.tmin, e.nextSeq(t))
	e.mflags[i] &^= mfResendHop
}

// fireCrash applies the victim's crash: cancel its timers and mark it
// crashed (a voluntary inactivation — it never sets falseAt). A victim
// that already self-inactivated is left as is, like Machine.Crash on a
// non-active process.
//
//hbvet:noalloc
func (e *engine) fireCrash(t int, now int64) {
	i := t*e.n + e.victim
	if e.mflags[i]&(mfCrashed|mfInactive) != 0 {
		return
	}
	e.mflags[i] |= mfCrashed
	e.keys[e.slot(t, e.victim, sWatch)] = inertKey
	e.keys[e.slot(t, e.victim, sResend)] = inertKey
}

// stepRound is the lockstep batch step: every live trial advances one
// coordinator round (tight loops over the SoA rows, no allocations).
// Returns false once every trial in the block has run out of events.
//
//hbvet:noalloc
func (e *engine) stepRound() bool {
	if e.live == 0 {
		return false
	}
	live := 0
	fast := e.n == 1 && !e.fixed && !e.joining
	for t := 0; t < e.trials; t++ {
		if e.tflags[t]&tfDone != 0 {
			continue
		}
		var more bool
		if fast {
			more = e.stepTrialBinary(t)
		} else {
			more = e.stepTrial(t)
		}
		if !more {
			e.tflags[t] |= tfDone
			continue
		}
		live++
	}
	e.live = live
	return live > 0
}
