// Bounded-memory streaming statistics for ensemble-scale campaigns.
// Sample buffers every observation, which is exact but O(n) memory — fine
// for hundreds of trials, hopeless for the 10M-trial sweeps the ensemble
// engine runs. Welford and QuantileSketch hold constant state per stream
// and merge deterministically, so per-block partials from a parallel sweep
// combine into byte-identical aggregates at any worker count (merge order
// is the caller's responsibility for Welford; sketch merges are exact
// integer adds and commute).
package stats

import (
	"fmt"
	"math"
)

// Welford is a constant-memory running mean/variance accumulator using
// Welford's online algorithm, with min/max tracking. The zero value is an
// empty accumulator ready for use. It is a value type: copying snapshots
// the state, and Merge combines two accumulators with Chan et al.'s
// parallel formula.
type Welford struct {
	Count uint64
	// MeanV and M2 are Welford's running mean and sum of squared
	// deviations; exported so per-block partials can be compared and
	// serialized, but use the methods for queries.
	MeanV, M2  float64
	MinV, MaxV float64
}

// Add records one observation.
func (w *Welford) Add(v float64) {
	if w.Count == 0 {
		w.MinV, w.MaxV = v, v
	} else {
		if v < w.MinV {
			w.MinV = v
		}
		if v > w.MaxV {
			w.MaxV = v
		}
	}
	w.Count++
	d := v - w.MeanV
	w.MeanV += d / float64(w.Count)
	w.M2 += d * (v - w.MeanV)
}

// Merge absorbs o into w as if o's observations had been Added after w's.
// The result depends (in the last floating-point bits) on merge order, so
// parallel reducers must merge partials in a fixed order to stay
// deterministic.
func (w *Welford) Merge(o Welford) {
	if o.Count == 0 {
		return
	}
	if w.Count == 0 {
		*w = o
		return
	}
	if o.MinV < w.MinV {
		w.MinV = o.MinV
	}
	if o.MaxV > w.MaxV {
		w.MaxV = o.MaxV
	}
	n1, n2 := float64(w.Count), float64(o.Count)
	d := o.MeanV - w.MeanV
	n := n1 + n2
	w.MeanV += d * n2 / n
	w.M2 += o.M2 + d*d*n1*n2/n
	w.Count += o.Count
}

// N returns the number of observations.
func (w *Welford) N() uint64 { return w.Count }

// Mean returns the arithmetic mean.
func (w *Welford) Mean() (float64, error) {
	if w.Count == 0 {
		return 0, ErrEmpty
	}
	return w.MeanV, nil
}

// Variance returns the unbiased sample variance.
func (w *Welford) Variance() (float64, error) {
	if w.Count < 2 {
		return 0, fmt.Errorf("%w: variance needs two observations", ErrEmpty)
	}
	return w.M2 / float64(w.Count-1), nil
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() (float64, error) {
	v, err := w.Variance()
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// Min returns the smallest observation.
func (w *Welford) Min() (float64, error) {
	if w.Count == 0 {
		return 0, ErrEmpty
	}
	return w.MinV, nil
}

// Max returns the largest observation.
func (w *Welford) Max() (float64, error) {
	if w.Count == 0 {
		return 0, ErrEmpty
	}
	return w.MaxV, nil
}

// MeanCI95 returns the mean together with its normal-approximation 95%
// confidence half-width, the pair every experiment table reports.
func (w *Welford) MeanCI95() (mean, half float64, err error) {
	sd, err := w.StdDev()
	if err != nil {
		return 0, 0, err
	}
	return w.MeanV, 1.96 * sd / math.Sqrt(float64(w.Count)), nil
}

// QuantileSketch estimates quantiles from a fixed-size bucket array over
// [Lo, Hi): constant memory regardless of stream length. Out-of-range
// observations clamp into the edge buckets (and are still counted), so
// tail quantiles stay conservative. When observations are integers and the
// bucket width is 1, quantiles are exact order statistics. Merging adds
// bucket counts — exact, order-independent integer arithmetic.
type QuantileSketch struct {
	Lo, Hi  float64
	Buckets []uint64
	Total   uint64
}

// NewQuantileSketch builds a sketch with n buckets over [lo, hi).
func NewQuantileSketch(lo, hi float64, n int) (*QuantileSketch, error) {
	if n < 1 || hi <= lo {
		return nil, fmt.Errorf("stats: bad sketch shape [%v,%v) x%d", lo, hi, n)
	}
	return &QuantileSketch{Lo: lo, Hi: hi, Buckets: make([]uint64, n)}, nil
}

// Add records one observation.
func (q *QuantileSketch) Add(v float64) {
	// Multiply before dividing: (v-Lo)/(Hi-Lo)*n rounds 411/823*823 down
	// to 410.999..., misplacing integer observations by one bucket.
	idx := int((v - q.Lo) * float64(len(q.Buckets)) / (q.Hi - q.Lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(q.Buckets) {
		idx = len(q.Buckets) - 1
	}
	q.Buckets[idx]++
	q.Total++
}

// Merge adds o's bucket counts into q. The shapes must match.
func (q *QuantileSketch) Merge(o *QuantileSketch) error {
	if o == nil || o.Total == 0 {
		return nil
	}
	if o.Lo != q.Lo || o.Hi != q.Hi || len(o.Buckets) != len(q.Buckets) {
		return fmt.Errorf("stats: merging mismatched sketches [%v,%v)x%d into [%v,%v)x%d",
			o.Lo, o.Hi, len(o.Buckets), q.Lo, q.Hi, len(q.Buckets))
	}
	for i, c := range o.Buckets {
		q.Buckets[i] += c
	}
	q.Total += o.Total
	return nil
}

// N returns the number of observations.
func (q *QuantileSketch) N() uint64 { return q.Total }

// Width returns the bucket width — the resolution of every quantile
// estimate. An estimate can be off by strictly less than one width.
func (q *QuantileSketch) Width() float64 {
	return (q.Hi - q.Lo) / float64(len(q.Buckets))
}

// Quantile returns the value at quantile p in [0, 1]: the lower edge of
// the bucket holding the ceil(p·n)-th order statistic. With unit-width
// buckets over integer data this is the exact order statistic; with
// coarser buckets the true quantile lies in [edge, edge+Width()), so
// the point estimate is biased low by up to one bucket width — use
// QuantileBounds when the error bar matters, and Width to report the
// sketch's resolution alongside the estimate.
func (q *QuantileSketch) Quantile(p float64) (float64, error) {
	lo, _, err := q.QuantileBounds(p)
	return lo, err
}

// QuantileBounds returns the bucket interval [lo, hi) that contains the
// quantile-p order statistic: lo is Quantile's point estimate and
// hi - lo is one bucket width, the estimate's worst-case error.
func (q *QuantileSketch) QuantileBounds(p float64) (lo, hi float64, err error) {
	if q.Total == 0 {
		return 0, 0, ErrEmpty
	}
	if p < 0 || p > 1 {
		return 0, 0, fmt.Errorf("stats: quantile %v out of [0,1]", p)
	}
	rank := uint64(math.Ceil(p * float64(q.Total)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	width := q.Width()
	for i, c := range q.Buckets {
		seen += c
		if seen >= rank {
			lo = q.Lo + float64(i)*width
			return lo, lo + width, nil
		}
	}
	return q.Hi, q.Hi + width, nil
}
