package stats

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func addAll(s *Sample, vs ...float64) {
	for _, v := range vs {
		s.Add(v)
	}
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSampleBasics(t *testing.T) {
	var s Sample
	addAll(&s, 1, 2, 3, 4, 5)
	if s.N() != 5 || s.Sum() != 15 {
		t.Fatalf("n=%d sum=%v", s.N(), s.Sum())
	}
	mean, err := s.Mean()
	if err != nil || !almost(mean, 3) {
		t.Fatalf("mean = %v, %v", mean, err)
	}
	v, err := s.Variance()
	if err != nil || !almost(v, 2.5) {
		t.Fatalf("variance = %v, %v", v, err)
	}
	sd, err := s.StdDev()
	if err != nil || !almost(sd, math.Sqrt(2.5)) {
		t.Fatalf("stddev = %v, %v", sd, err)
	}
	lo, _ := s.Min()
	hi, _ := s.Max()
	if lo != 1 || hi != 5 {
		t.Fatalf("min=%v max=%v", lo, hi)
	}
}

func TestEmptySampleErrors(t *testing.T) {
	var s Sample
	if _, err := s.Mean(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Mean on empty = %v", err)
	}
	if _, err := s.Min(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Min on empty = %v", err)
	}
	if _, err := s.Percentile(50); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Percentile on empty = %v", err)
	}
	one := Sample{}
	one.Add(7)
	if _, err := one.Variance(); err == nil {
		t.Fatal("Variance with one observation must error")
	}
	if s := one.Describe(); !strings.Contains(s, "n=1") {
		t.Fatalf("Describe(n=1) = %q", s)
	}
	var empty Sample
	if empty.Describe() != "(no data)" {
		t.Fatal("Describe on empty")
	}
}

func TestPercentiles(t *testing.T) {
	var s Sample
	addAll(&s, 10, 20, 30, 40)
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5},
	}
	for _, tt := range tests {
		got, err := s.Percentile(tt.p)
		if err != nil || !almost(got, tt.want) {
			t.Errorf("p%v = %v (%v), want %v", tt.p, got, err, tt.want)
		}
	}
	if _, err := s.Percentile(-1); err == nil {
		t.Fatal("negative percentile accepted")
	}
	if _, err := s.Percentile(101); err == nil {
		t.Fatal("percentile > 100 accepted")
	}
}

func TestPercentileAfterAddResorts(t *testing.T) {
	var s Sample
	addAll(&s, 3, 1)
	if v, _ := s.Percentile(0); v != 1 {
		t.Fatalf("p0 = %v", v)
	}
	s.Add(0)
	if v, _ := s.Percentile(0); v != 0 {
		t.Fatalf("p0 after add = %v, want 0", v)
	}
}

func TestAddN(t *testing.T) {
	var s Sample
	s.AddN(2, 3)
	if s.N() != 3 || s.Sum() != 6 {
		t.Fatalf("AddN: n=%d sum=%v", s.N(), s.Sum())
	}
}

// TestPropertyMeanWithinRange: a mean always lies within [min, max].
func TestPropertyMeanWithinRange(t *testing.T) {
	f := func(raw []float64) bool {
		var s Sample
		for _, v := range raw {
			// Skip values whose sum could overflow; the experiments
			// only feed bounded tick counts and probabilities.
			if math.IsNaN(v) || math.Abs(v) > 1e100 {
				continue
			}
			s.Add(v)
		}
		if s.N() == 0 {
			return true
		}
		mean, err := s.Mean()
		if err != nil {
			return false
		}
		lo, _ := s.Min()
		hi, _ := s.Max()
		return mean >= lo-1e-9 && mean <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyPercentileMonotone: percentiles are nondecreasing in p.
func TestPropertyPercentileMonotone(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Sample
		for i := 0; i < int(n%50)+1; i++ {
			s.Add(rng.NormFloat64())
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v, err := s.Percentile(p)
			if err != nil || v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var small, large Sample
	for i := 0; i < 30; i++ {
		small.Add(rng.NormFloat64())
	}
	for i := 0; i < 3000; i++ {
		large.Add(rng.NormFloat64())
	}
	ciS, err1 := small.CI95()
	ciL, err2 := large.CI95()
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if ciL >= ciS {
		t.Fatalf("ci(n=3000)=%v not smaller than ci(n=30)=%v", ciL, ciS)
	}
}

func TestRatio(t *testing.T) {
	var r Ratio
	if _, err := r.Value(); !errors.Is(err, ErrEmpty) {
		t.Fatal("empty ratio must error")
	}
	for i := 0; i < 80; i++ {
		r.Observe(true)
	}
	for i := 0; i < 20; i++ {
		r.Observe(false)
	}
	v, err := r.Value()
	if err != nil || !almost(v, 0.8) {
		t.Fatalf("value = %v, %v", v, err)
	}
	lo, hi, err := r.Wilson95()
	if err != nil {
		t.Fatal(err)
	}
	if lo >= 0.8 || hi <= 0.8 {
		t.Fatalf("wilson interval [%v,%v] must contain 0.8", lo, hi)
	}
	if lo < 0 || hi > 1 {
		t.Fatalf("wilson interval [%v,%v] out of [0,1]", lo, hi)
	}
}

// TestPropertyWilsonContainsPointEstimate for non-degenerate counts.
func TestPropertyWilsonContainsPointEstimate(t *testing.T) {
	f := func(succ, fail uint8) bool {
		r := Ratio{Successes: int(succ), Trials: int(succ) + int(fail)}
		if r.Trials == 0 {
			return true
		}
		p, _ := r.Value()
		lo, hi, err := r.Wilson95()
		return err == nil && lo <= p+1e-9 && hi >= p-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{-1, 0, 1.9, 2, 9.9, 10, 42} {
		h.Add(v)
	}
	want := []int{3, 1, 0, 0, 3}
	for i, w := range want {
		if h.Buckets[i] != w {
			t.Fatalf("buckets = %v, want %v", h.Buckets, want)
		}
	}
	out := h.Render(10)
	if !strings.Contains(out, "#") || strings.Count(out, "\n") != 5 {
		t.Fatalf("render:\n%s", out)
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Fatal("degenerate range accepted")
	}
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Fatal("zero buckets accepted")
	}
}

func TestDescribe(t *testing.T) {
	var s Sample
	addAll(&s, 1, 2, 3, 4, 100)
	d := s.Describe()
	for _, frag := range []string{"±", "min", "p50", "p99", "max", "n=5"} {
		if !strings.Contains(d, frag) {
			t.Fatalf("describe %q missing %q", d, frag)
		}
	}
}
