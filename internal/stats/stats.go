// Package stats provides the summary statistics used by the Monte-Carlo
// heartbeat experiments: running samples with means, deviations,
// percentiles and normal-approximation confidence intervals, plus fixed-
// width histograms.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// ErrEmpty is returned by queries on samples with no observations.
var ErrEmpty = errors.New("stats: empty sample")

// Sample accumulates float64 observations.
type Sample struct {
	values []float64
	sorted bool
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	s.values = append(s.values, v)
	s.sorted = false
}

// AddN records an observation with multiplicity n.
func (s *Sample) AddN(v float64, n int) {
	for i := 0; i < n; i++ {
		s.Add(v)
	}
}

// Merge absorbs every observation of other into s, as if each had been
// Added individually; other is unchanged. Useful for combining per-worker
// samples after a parallel sweep.
func (s *Sample) Merge(other *Sample) {
	if other == nil || len(other.values) == 0 {
		return
	}
	s.values = append(s.values, other.values...)
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.values) }

// Values returns a copy of the observations in insertion order — unless an
// order-statistic query (Min/Max/Percentile) has already run, which sorts
// the backing store in place. Callers needing insertion order must read
// Values before such queries.
func (s *Sample) Values() []float64 {
	return append([]float64(nil), s.values...)
}

// Sum returns the total of all observations.
func (s *Sample) Sum() float64 {
	total := 0.0
	for _, v := range s.values {
		total += v
	}
	return total
}

// Mean returns the arithmetic mean.
func (s *Sample) Mean() (float64, error) {
	if len(s.values) == 0 {
		return 0, ErrEmpty
	}
	return s.Sum() / float64(len(s.values)), nil
}

// Variance returns the unbiased sample variance.
func (s *Sample) Variance() (float64, error) {
	if len(s.values) < 2 {
		return 0, fmt.Errorf("%w: variance needs two observations", ErrEmpty)
	}
	mean, _ := s.Mean()
	ss := 0.0
	for _, v := range s.values {
		d := v - mean
		ss += d * d
	}
	return ss / float64(len(s.values)-1), nil
}

// StdDev returns the sample standard deviation.
func (s *Sample) StdDev() (float64, error) {
	v, err := s.Variance()
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// Min returns the smallest observation.
func (s *Sample) Min() (float64, error) {
	if len(s.values) == 0 {
		return 0, ErrEmpty
	}
	s.ensureSorted()
	return s.values[0], nil
}

// Max returns the largest observation.
func (s *Sample) Max() (float64, error) {
	if len(s.values) == 0 {
		return 0, ErrEmpty
	}
	s.ensureSorted()
	return s.values[len(s.values)-1], nil
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between order statistics.
func (s *Sample) Percentile(p float64) (float64, error) {
	if len(s.values) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %v out of [0,100]", p)
	}
	s.ensureSorted()
	if len(s.values) == 1 {
		return s.values[0], nil
	}
	rank := p / 100 * float64(len(s.values)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.values[lo], nil
	}
	frac := rank - float64(lo)
	return s.values[lo]*(1-frac) + s.values[hi]*frac, nil
}

// CI95 returns the normal-approximation 95% confidence half-width of the
// mean.
func (s *Sample) CI95() (float64, error) {
	sd, err := s.StdDev()
	if err != nil {
		return 0, err
	}
	return 1.96 * sd / math.Sqrt(float64(len(s.values))), nil
}

// ensureSorted sorts the backing slice once per batch of queries.
func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
}

// Describe renders "mean ± ci [min, p50, p99, max] (n=...)" for reports;
// degenerate samples render what they can.
func (s *Sample) Describe() string {
	if len(s.values) == 0 {
		return "(no data)"
	}
	mean, _ := s.Mean()
	minV, _ := s.Min()
	maxV, _ := s.Max()
	p50, _ := s.Percentile(50)
	p99, _ := s.Percentile(99)
	ci, err := s.CI95()
	if err != nil {
		return fmt.Sprintf("%.3g (n=1)", mean)
	}
	return fmt.Sprintf("%.4g ± %.2g [min %.4g, p50 %.4g, p99 %.4g, max %.4g] (n=%d)",
		mean, ci, minV, p50, p99, maxV, len(s.values))
}

// Ratio is a Bernoulli counter: successes over trials, with a Wilson
// score interval for small samples.
type Ratio struct {
	Successes, Trials int
}

// Observe records one trial.
func (r *Ratio) Observe(success bool) {
	r.Trials++
	if success {
		r.Successes++
	}
}

// Value returns the observed proportion.
func (r *Ratio) Value() (float64, error) {
	if r.Trials == 0 {
		return 0, ErrEmpty
	}
	return float64(r.Successes) / float64(r.Trials), nil
}

// Wilson95 returns the 95% Wilson score interval for the proportion.
func (r *Ratio) Wilson95() (lo, hi float64, err error) {
	if r.Trials == 0 {
		return 0, 0, ErrEmpty
	}
	const z = 1.96
	n := float64(r.Trials)
	p := float64(r.Successes) / n
	denom := 1 + z*z/n
	center := (p + z*z/(2*n)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/n+z*z/(4*n*n))
	return math.Max(0, center-half), math.Min(1, center+half), nil
}

// Histogram counts observations into fixed-width buckets over [Lo, Hi);
// out-of-range observations land in the first/last bucket.
type Histogram struct {
	Lo, Hi  float64
	Buckets []int
}

// NewHistogram builds a histogram with n buckets over [lo, hi).
func NewHistogram(lo, hi float64, n int) (*Histogram, error) {
	if n < 1 || hi <= lo {
		return nil, fmt.Errorf("stats: bad histogram shape [%v,%v) x%d", lo, hi, n)
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int, n)}, nil
}

// Add records an observation.
func (h *Histogram) Add(v float64) {
	idx := int((v - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Buckets)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Buckets) {
		idx = len(h.Buckets) - 1
	}
	h.Buckets[idx]++
}

// Render draws the histogram with proportional bars of at most width
// characters.
func (h *Histogram) Render(width int) string {
	maxCount := 0
	for _, c := range h.Buckets {
		if c > maxCount {
			maxCount = c
		}
	}
	var sb strings.Builder
	step := (h.Hi - h.Lo) / float64(len(h.Buckets))
	for i, c := range h.Buckets {
		bar := 0
		if maxCount > 0 {
			bar = c * width / maxCount
		}
		fmt.Fprintf(&sb, "[%8.3g, %8.3g) %6d %s\n",
			h.Lo+float64(i)*step, h.Lo+float64(i+1)*step, c, strings.Repeat("#", bar))
	}
	return sb.String()
}
