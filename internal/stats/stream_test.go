package stats

import (
	"math"
	"math/rand"
	"testing"
)

// property: on the same data, Welford must agree with the exact two-pass
// Sample within floating-point noise, for a spread of sizes and scales.
func TestWelfordMatchesSample(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(2000)
		scale := math.Pow(10, float64(rng.Intn(7)-3))
		offset := float64(rng.Intn(1000)) * scale
		var s Sample
		var w Welford
		for i := 0; i < n; i++ {
			v := offset + rng.NormFloat64()*scale
			s.Add(v)
			w.Add(v)
		}
		if got, want := int(w.N()), s.N(); got != want {
			t.Fatalf("trial %d: n %d != %d", trial, got, want)
		}
		sm, _ := s.Mean()
		wm, _ := w.Mean()
		if !closeRel(sm, wm, 1e-9) {
			t.Fatalf("trial %d: mean %g (welford) vs %g (sample)", trial, wm, sm)
		}
		sv, _ := s.Variance()
		wv, _ := w.Variance()
		if !closeRel(sv, wv, 1e-6) {
			t.Fatalf("trial %d: variance %g (welford) vs %g (sample)", trial, wv, sv)
		}
		sci, _ := s.CI95()
		_, wci, err := w.MeanCI95()
		if err != nil || !closeRel(sci, wci, 1e-6) {
			t.Fatalf("trial %d: ci95 %g (welford, err %v) vs %g (sample)", trial, wci, err, sci)
		}
		smin, _ := s.Min()
		smax, _ := s.Max()
		wmin, _ := w.Min()
		wmax, _ := w.Max()
		if smin != wmin || smax != wmax {
			t.Fatalf("trial %d: min/max (%g,%g) vs (%g,%g)", trial, wmin, wmax, smin, smax)
		}
	}
}

// property: splitting a stream into chunks and merging the partials must
// agree with the bulk accumulator (same data, any split point).
func TestWelfordMergeMatchesBulk(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		n := 10 + rng.Intn(500)
		values := make([]float64, n)
		for i := range values {
			values[i] = rng.NormFloat64()*50 + 200
		}
		var bulk Welford
		for _, v := range values {
			bulk.Add(v)
		}
		cut := 1 + rng.Intn(n-1)
		var a, b Welford
		for _, v := range values[:cut] {
			a.Add(v)
		}
		for _, v := range values[cut:] {
			b.Add(v)
		}
		a.Merge(b)
		if a.Count != bulk.Count {
			t.Fatalf("trial %d: merged n %d != %d", trial, a.Count, bulk.Count)
		}
		if !closeRel(a.MeanV, bulk.MeanV, 1e-9) || !closeRel(a.M2, bulk.M2, 1e-6) {
			t.Fatalf("trial %d (cut %d): merged mean/m2 (%g, %g) vs bulk (%g, %g)",
				trial, cut, a.MeanV, a.M2, bulk.MeanV, bulk.M2)
		}
		if a.MinV != bulk.MinV || a.MaxV != bulk.MaxV {
			t.Fatalf("trial %d: merged min/max (%g,%g) vs bulk (%g,%g)",
				trial, a.MinV, a.MaxV, bulk.MinV, bulk.MaxV)
		}
	}
}

func TestWelfordMergeEmptyAndDeterministicOrder(t *testing.T) {
	var w Welford
	w.Merge(Welford{}) // no-op
	if w.Count != 0 {
		t.Fatalf("merging empty into empty produced n=%d", w.Count)
	}
	w.Add(3)
	w.Merge(Welford{})
	if w.Count != 1 || w.MeanV != 3 {
		t.Fatalf("merging empty changed state: %+v", w)
	}
	var empty Welford
	empty.Merge(w)
	if empty.Count != 1 || empty.MeanV != 3 || empty.MinV != 3 || empty.MaxV != 3 {
		t.Fatalf("merging into empty lost state: %+v", empty)
	}

	// Same partials merged in the same order must be bit-identical — the
	// determinism contract the ensemble's block reducer relies on.
	mk := func() Welford {
		rng := rand.New(rand.NewSource(7))
		var parts [8]Welford
		for i := range parts {
			for j := 0; j < 100; j++ {
				parts[i].Add(rng.Float64() * 1000)
			}
		}
		var total Welford
		for _, p := range parts {
			total.Merge(p)
		}
		return total
	}
	a, b := mk(), mk()
	if a != b {
		t.Fatalf("fixed-order merge not reproducible: %+v vs %+v", a, b)
	}
}

// property: with unit-width buckets over integer-valued data, the sketch
// quantile is the exact order statistic; with coarser buckets it is within
// one bucket width of Sample's interpolated percentile.
func TestQuantileSketchMatchesSample(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 30; trial++ {
		hi := 200 + rng.Intn(800)
		n := 50 + rng.Intn(5000)
		var s Sample
		q, err := NewQuantileSketch(0, float64(hi), hi)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			v := float64(rng.Intn(hi))
			s.Add(v)
			q.Add(v)
		}
		for _, p := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
			got, err := q.Quantile(p)
			if err != nil {
				t.Fatal(err)
			}
			want := exactQuantile(&s, p)
			if got != want {
				t.Fatalf("trial %d: q(%g) = %g, exact order statistic %g", trial, p, got, want)
			}
		}
	}
}

// property: with buckets coarser than the data, the point estimate is
// the bucket lower edge, QuantileBounds brackets the exact order
// statistic, and the bracket is exactly one Width() wide — the error
// bar a caller reports when the sketch has coarsened.
func TestQuantileBoundsBracketExact(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 20; trial++ {
		hi := 1000 + rng.Intn(4000)
		nb := 8 + rng.Intn(60)
		n := 100 + rng.Intn(3000)
		var s Sample
		q, err := NewQuantileSketch(0, float64(hi), nb)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := q.Width(), float64(hi)/float64(nb); got != want {
			t.Fatalf("trial %d: width %g, want %g", trial, got, want)
		}
		for i := 0; i < n; i++ {
			v := float64(rng.Intn(hi))
			s.Add(v)
			q.Add(v)
		}
		eps := 1e-9 * float64(hi)
		for _, p := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
			lo, bhi, err := q.QuantileBounds(p)
			if err != nil {
				t.Fatal(err)
			}
			if got := bhi - lo; !closeRel(got, q.Width(), 1e-9) {
				t.Fatalf("trial %d: bounds span %g, want one bucket width %g", trial, got, q.Width())
			}
			point, err := q.Quantile(p)
			if err != nil || point != lo {
				t.Fatalf("trial %d: Quantile %g != bounds lower edge %g (err %v)", trial, point, lo, err)
			}
			exact := exactQuantile(&s, p)
			if exact < lo-eps || exact >= bhi+eps {
				t.Fatalf("trial %d: exact q(%g) = %g outside bucket [%g, %g)", trial, p, exact, lo, bhi)
			}
		}
	}
}

// exactQuantile computes the ceil(p*n)-th order statistic via Percentile's
// sorted backing store.
func exactQuantile(s *Sample, p float64) float64 {
	vals := s.Values()
	// Percentile(0) sorts; reuse it for the sort side effect only.
	if _, err := s.Percentile(0); err != nil {
		return math.NaN()
	}
	sorted := s.values
	rank := int(math.Ceil(p * float64(len(vals))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

func TestQuantileSketchMergeAndClamp(t *testing.T) {
	a, _ := NewQuantileSketch(0, 100, 100)
	b, _ := NewQuantileSketch(0, 100, 100)
	for i := 0; i < 100; i++ {
		a.Add(float64(i))
		b.Add(float64(99 - i))
	}
	b.Add(-5)  // clamps into bucket 0
	b.Add(500) // clamps into the last bucket
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.N() != 202 {
		t.Fatalf("merged n = %d, want 202", a.N())
	}
	if v, _ := a.Quantile(0); v != 0 {
		t.Fatalf("q(0) = %g after clamp merge", v)
	}
	if v, _ := a.Quantile(1); v != 99 {
		t.Fatalf("q(1) = %g, want last bucket edge 99", v)
	}
	mismatched, _ := NewQuantileSketch(0, 50, 100)
	mismatched.Add(1)
	if err := a.Merge(mismatched); err == nil {
		t.Fatal("merging mismatched shapes did not error")
	}
}

func TestSampleValuesInsertionOrder(t *testing.T) {
	var s Sample
	for _, v := range []float64{5, 1, 9, 3} {
		s.Add(v)
	}
	got := s.Values()
	want := []float64{5, 1, 9, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Values() = %v, want insertion order %v", got, want)
		}
	}
	// Mutating the copy must not touch the sample.
	got[0] = -1
	if v, _ := s.Mean(); v != 4.5 {
		t.Fatalf("mean changed after mutating Values() copy: %g", v)
	}
}

func closeRel(a, b, tol float64) bool {
	if a == b {
		return true
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= tol*den
}
