package stats

import (
	"math"
	"math/rand"
	"testing"
)

// TestPercentileMonotonic checks the order property of the quantile
// estimator on random samples: p -> Percentile(p) is nondecreasing and
// pinned to Min at 0 and Max at 100.
func TestPercentileMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		var s Sample
		n := 1 + rng.Intn(40)
		for i := 0; i < n; i++ {
			// Mix of scales, including duplicates and negatives.
			s.Add(float64(rng.Intn(10)) * (rng.Float64()*2 - 1) * 100)
		}
		prev, err := s.Percentile(0)
		if err != nil {
			t.Fatal(err)
		}
		if lo, _ := s.Min(); prev != lo {
			t.Fatalf("trial %d: Percentile(0) = %v, Min = %v", trial, prev, lo)
		}
		for p := 1.0; p <= 100; p++ {
			q, err := s.Percentile(p)
			if err != nil {
				t.Fatal(err)
			}
			if q < prev {
				t.Fatalf("trial %d: Percentile(%v) = %v < Percentile(%v) = %v",
					trial, p, q, p-1, prev)
			}
			prev = q
		}
		if hi, _ := s.Max(); prev != hi {
			t.Fatalf("trial %d: Percentile(100) = %v, Max = %v", trial, prev, hi)
		}
	}
}

// TestMergeMatchesBulk checks that splitting a stream across workers and
// merging afterwards is indistinguishable from one bulk sample: same N,
// sum, and quantiles.
func TestMergeMatchesBulk(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		var bulk Sample
		parts := make([]Sample, 1+rng.Intn(4))
		n := 1 + rng.Intn(60)
		for i := 0; i < n; i++ {
			v := rng.NormFloat64() * 10
			bulk.Add(v)
			parts[rng.Intn(len(parts))].Add(v)
		}
		var merged Sample
		for i := range parts {
			merged.Merge(&parts[i])
		}
		if merged.N() != bulk.N() {
			t.Fatalf("trial %d: merged N = %d, bulk N = %d", trial, merged.N(), bulk.N())
		}
		// Summation order differs, so the sums agree only up to float
		// associativity; the quantiles below are exact (same sorted
		// multiset).
		if math.Abs(merged.Sum()-bulk.Sum()) > 1e-9*(1+math.Abs(bulk.Sum())) {
			t.Fatalf("trial %d: merged sum = %v, bulk sum = %v", trial, merged.Sum(), bulk.Sum())
		}
		for _, p := range []float64{0, 10, 25, 50, 75, 90, 99, 100} {
			qm, err1 := merged.Percentile(p)
			qb, err2 := bulk.Percentile(p)
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			if qm != qb {
				t.Fatalf("trial %d: p%v merged = %v, bulk = %v", trial, p, qm, qb)
			}
		}
	}
}

func TestMergeDegenerate(t *testing.T) {
	var s Sample
	s.Add(1)
	s.Merge(nil)
	s.Merge(&Sample{})
	if s.N() != 1 {
		t.Fatalf("degenerate merges changed N: %d", s.N())
	}
	// Merging into an empty sample copies, and the source is untouched.
	var dst Sample
	dst.Merge(&s)
	dst.Add(2)
	if s.N() != 1 || dst.N() != 2 {
		t.Fatalf("N source=%d dst=%d", s.N(), dst.N())
	}
}
