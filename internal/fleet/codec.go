package fleet

// Batched wire codec for cross-shard traffic.
//
// All traffic between shards moves in per-(source, destination) byte
// buffers exchanged at epoch barriers: a shard appends frames for a
// destination into one contiguous buffer, and the destination decodes
// the whole batch in source order. Framing is a one-byte type tag
// followed by the record's fixed wire encoding (core.Beat for the
// shard-level liveness beat, core.Summary for rollup reports), so a
// batch of thousands of summaries is a single allocation-free append
// stream on the send side and a single linear scan on the receive side.

import (
	"fmt"

	"repro/internal/core"
)

// Frame type tags.
const (
	frameBeat    byte = 1
	frameSummary byte = 2
)

const beatFrameWire = 4 // encoded core.Beat

// ErrBadFrame reports a malformed cross-shard batch.
var ErrBadFrame = fmt.Errorf("fleet: malformed frame batch")

//hbvet:noalloc
// appendBeatFrame appends a shard-liveness beat frame.
func appendBeatFrame(dst []byte, b core.Beat) []byte {
	return b.AppendMarshal(append(dst, frameBeat))
}

//hbvet:noalloc
// appendSummaryFrame appends a rollup summary frame.
func appendSummaryFrame(dst []byte, s core.Summary) []byte {
	return s.AppendMarshal(append(dst, frameSummary))
}

// batchDecoder walks one cross-shard batch frame by frame.
type batchDecoder struct {
	buf []byte
}

//hbvet:noalloc
func (d *batchDecoder) done() bool { return len(d.buf) == 0 }

//hbvet:noalloc
// next decodes the next frame, returning exactly one of beat or summary
// (tag tells which).
func (d *batchDecoder) next() (tag byte, beat core.Beat, sum core.Summary, err error) {
	tag = d.buf[0]
	switch tag {
	case frameBeat:
		if len(d.buf) < 1+beatFrameWire {
			//lint:allow hot-path-alloc cold error path; batches come whole from appendBeatFrame
			return 0, beat, sum, fmt.Errorf("%w: truncated beat", ErrBadFrame)
		}
		beat, err = core.UnmarshalBeat(d.buf[1 : 1+beatFrameWire])
		d.buf = d.buf[1+beatFrameWire:]
	case frameSummary:
		sum, d.buf, err = core.UnmarshalSummary(d.buf[1:])
	default:
		//lint:allow hot-path-alloc cold error path; an unknown tag means a codec bug, not load
		return 0, beat, sum, fmt.Errorf("%w: unknown tag %d", ErrBadFrame, tag)
	}
	return tag, beat, sum, err
}
