package fleet

// One shard of the fleet: a slice of the endpoint population driven by a
// private timer wheel, a private RNG, and nothing else — shards share no
// mutable state during an epoch, which is what makes fleet runs
// byte-identical at any worker count (see fleet.go).
//
// Machine identity is split from transport: a monitored endpoint is not a
// goroutine with a socket but a row across parallel arrays (wait, flags,
// watch, killAt), and every protocol action is a handful of array reads
// and O(1) wheel operations. The hot path is allocation-free at steady
// state and pinned by TestFleetSteadyStateAllocFree.

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/sim"
)

// Wheel payloads carry the event kind in the top bits and the endpoint's
// local row index in the rest.
const (
	kindShift = 29
	idxMask   = 1<<kindShift - 1
)

const (
	kRound uint32 = iota // close member e's protocol round
	kWatch               // member e's responder watchdog expired
	kKill                // shard-level fault injector tick
)

// Endpoint flag bits.
const (
	fKilled uint8 = 1 << iota // fault injector crashed the endpoint
	fSuspected                // coordinator declared it down
	fInactive                 // its responder watchdog self-inactivated it
)

// shard owns a contiguous block of clusters and all their member rows.
type shard struct {
	id        int
	numShards int
	aggFanout uint32
	wheel     *sim.TimerWheel
	rng       *rand.Rand
	now       sim.Time

	cfg         core.Config
	respBound   sim.Time
	linkDelay   sim.Time
	lossProb    float64
	burst       bool
	killEvery   sim.Time
	clusterSize int32
	clusterLo   int32 // global id of this shard's first cluster

	// Endpoint rows, struct-of-arrays; the row's cluster is row/clusterSize.
	wait   []int32          // coordinator's current waiting time for the member
	flags  []uint8          // fKilled | fSuspected | fInactive
	watch  []sim.WheelTimer // member's responder watchdog
	killAt []int64          // injection time, 0 = never killed

	// Per-cluster rollup state.
	clAlive []int32
	clDet   []uint32
	clGE    []faults.GEProcess

	// Aggregators hosted on this shard (global id ≡ shard id mod numShards).
	aggs []aggregator
	// heard[src] is the last epoch a liveness beat arrived from shard src.
	heard []uint32

	// outbuf[dst] is this shard's outbound batch for shard dst this epoch.
	outbuf [][]byte

	// Counters (merged by Fleet.Stats).
	beats, replies, losses  uint64
	kills, detections       uint64
	falseSuspects           uint64
	inactivations           uint64
	missedDeadlines         uint64
	latHist                 []uint32
	latOverflow             uint64
}

// aggregator accumulates one subtree's child summaries per epoch.
type aggregator struct {
	id       uint32 // summary id (disjoint from cluster ids)
	children int
	seen     int
	sum      core.Summary
	stale    uint64 // cumulative children missing at a barrier
}

//hbvet:noalloc
// runUntil drains every event strictly before end. Virtual time must
// never move backwards — a violation counts as a missed deadline and is
// asserted zero by the CI smoke run.
func (s *shard) runUntil(end sim.Time) {
	for {
		at, ok := s.wheel.NextAt()
		if !ok || at >= end {
			return
		}
		payload, at, _ := s.wheel.Pop()
		if at < s.now {
			s.missedDeadlines++
		}
		s.now = at
		e := int32(payload & idxMask)
		switch payload >> kindShift {
		case kRound:
			s.onRound(e)
		case kWatch:
			s.onWatch(e)
		default:
			s.onKill()
		}
	}
}

//hbvet:noalloc
// roll draws one loss verdict for a message in cluster cl. With a burst
// channel configured the whole cluster shares one Gilbert–Elliott chain
// (shared fate); otherwise losses are independent Bernoulli draws.
func (s *shard) roll(cl int32) bool {
	if s.burst {
		return s.clGE[cl].Lose(s.rng)
	}
	return s.lossProb > 0 && s.rng.Float64() < s.lossProb
}

//hbvet:noalloc
// onRound closes member e's protocol round: the coordinator sent a beat
// when the round opened (now - wait), the member replied iff the beat
// survived, the member was alive at arrival, and the reply's round trip
// fit inside the waiting time; the waiting time then follows the paper's
// acceleration rule (core.Config.NextWait) and either the next round is
// scheduled or the member is suspected.
func (s *shard) onRound(e int32) {
	fl := s.flags[e]
	if fl&fSuspected != 0 {
		return
	}
	s.beats++
	w := sim.Time(s.wait[e])
	cl := e / s.clusterSize
	arriveAt := s.now - w + s.linkDelay
	received := false
	if s.roll(cl) {
		s.losses++
	} else {
		aliveAtArrival := fl&fInactive == 0 &&
			(s.killAt[e] == 0 || sim.Time(s.killAt[e]) > arriveAt)
		if aliveAtArrival {
			// The member processed the beat: its responder watchdog
			// re-arms from the receipt time (the paper's responder bound).
			s.wheel.Cancel(s.watch[e])
			s.watch[e] = s.wheel.Schedule(arriveAt+s.respBound, kWatch<<kindShift|uint32(e))
			if s.roll(cl) {
				s.losses++
			} else if 2*s.linkDelay < w {
				received = true
				s.replies++
			}
		}
	}
	next, ok := s.cfg.NextWait(core.Tick(w), received)
	if !ok {
		s.flags[e] = fl | fSuspected
		s.clAlive[cl]--
		s.clDet[cl]++
		s.detections++
		s.wheel.Cancel(s.watch[e])
		s.watch[e] = sim.WheelTimer{}
		if s.killAt[e] != 0 {
			if lat := s.now - sim.Time(s.killAt[e]); int(lat) < len(s.latHist) {
				s.latHist[lat]++
			} else {
				s.latOverflow++
			}
		} else {
			s.falseSuspects++
		}
		return
	}
	s.wait[e] = int32(next)
	s.wheel.Schedule(s.now+sim.Time(next), kRound<<kindShift|uint32(e))
}

//hbvet:noalloc
// onWatch fires when a member went a whole responder bound without a
// beat: it self-inactivates, exactly like the paper's responder.
func (s *shard) onWatch(e int32) {
	s.watch[e] = sim.WheelTimer{}
	if s.flags[e]&(fInactive|fSuspected) == 0 {
		s.flags[e] |= fInactive
		s.inactivations++
	}
}

//hbvet:noalloc
// onKill crashes one live endpoint at random (the fault injector's tick)
// and re-arms itself. A handful of draws that all land on dead rows
// simply skip the tick.
func (s *shard) onKill() {
	for try := 0; try < 8; try++ {
		e := int32(s.rng.Intn(len(s.flags)))
		if s.flags[e]&(fKilled|fSuspected|fInactive) == 0 {
			s.flags[e] |= fKilled
			s.killAt[e] = int64(s.now)
			s.kills++
			break
		}
	}
	s.wheel.Schedule(s.now+s.killEvery, kKill<<kindShift)
}

//hbvet:noalloc
// emitSummaries encodes this shard's per-cluster rollups into the
// outbound batches, one per destination shard, prefixed by a shard
// liveness beat on every link. Buffers are reset in place, so the steady
// state allocates nothing.
func (s *shard) emitSummaries(epoch uint32) {
	for d := range s.outbuf {
		s.outbuf[d] = appendBeatFrame(s.outbuf[d][:0], core.Beat{From: core.ProcID(s.id), Stay: true})
	}
	for cl := range s.clAlive {
		g := uint32(s.clusterLo) + uint32(cl)
		dst := int(g/s.aggFanout) % s.numShards
		s.outbuf[dst] = appendSummaryFrame(s.outbuf[dst], core.Summary{
			Cluster:    g,
			Epoch:      epoch,
			Total:      uint32(s.clusterSize),
			Alive:      uint32(s.clAlive[cl]),
			Detections: s.clDet[cl],
		})
	}
}

// ingest decodes every source shard's batch for this shard, in source
// order: liveness beats stamp the heard table, summaries accumulate into
// the hosted aggregators. It runs strictly between epochs (the barrier in
// Fleet.RunEpochs), so reading the other shards' outbufs is race-free.
func (s *shard) ingest(shards []*shard, epoch uint32) error {
	for a := range s.aggs {
		ag := &s.aggs[a]
		ag.seen = 0
		ag.sum = core.Summary{Cluster: ag.id, Epoch: epoch}
	}
	for src := range shards {
		d := batchDecoder{buf: shards[src].outbuf[s.id]}
		for !d.done() {
			tag, beat, sum, err := d.next()
			if err != nil {
				return err
			}
			switch tag {
			case frameBeat:
				s.heard[beat.From] = epoch
			case frameSummary:
				local := int(sum.Cluster/s.aggFanout) / s.numShards
				ag := &s.aggs[local]
				ag.sum.Add(sum)
				ag.seen++
			}
		}
	}
	return nil
}
