// Package fleet runs thousands of independent accelerated-heartbeat
// clusters in one process.
//
// A detector.Cluster wires a handful of nodes 1:1 to goroutines and
// transports; a Fleet splits machine identity from transport endpoint and
// keeps every monitored endpoint as a row in a struct-of-arrays store,
// sharded across independent event loops backed by hierarchical timer
// wheels (sim.TimerWheel). Liveness rolls up a tree: leaf clusters report
// per-epoch summaries to aggregator subtrees hosted on other shards
// through a batched wire codec, and aggregators merge into a fleet-wide
// root summary at every barrier.
//
// Determinism: each shard owns a private RNG and timer wheel, consumed in
// the shard's own event order; cross-shard traffic moves only at epoch
// barriers, in per-(source, destination) buffers ingested in source
// order. Worker goroutines claim whole shards, so the worker count
// changes nothing — Digest() is byte-identical at any Workers value
// (pinned by TestFleetDigestIdenticalAcrossWorkers).
package fleet

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/sim"
)

// Config sizes and parameterises a fleet.
type Config struct {
	// Clusters is the number of leaf heartbeat clusters.
	Clusters int
	// ClusterSize is the number of monitored endpoints (members) per
	// cluster; total endpoints = Clusters * ClusterSize.
	ClusterSize int
	// Shards is the number of independent event loops (default 64;
	// clamped to Clusters). The shard count is part of the deterministic
	// result — change it and traces legitimately change, unlike Workers.
	Shards int
	// Workers is the number of goroutines driving shards (default 1).
	// Results are byte-identical at any value.
	Workers int
	// Core carries tmin/tmax and the protocol variant switches.
	Core core.Config
	// LinkDelay is the one-way beat/reply latency in ticks (default 1).
	LinkDelay sim.Time
	// LossProb is the independent per-message loss probability.
	LossProb float64
	// Burst, if non-nil, replaces Bernoulli loss with one shared-fate
	// Gilbert–Elliott chain per cluster.
	Burst *faults.GilbertElliott
	// KillEvery, if positive, crashes one random live endpoint per shard
	// every KillEvery ticks — the detection-latency workload.
	KillEvery sim.Time
	// Epoch is the rollup barrier period in ticks (default 2*TMax).
	Epoch sim.Time
	// AggFanout is the number of leaf clusters per aggregator subtree
	// (default 64).
	AggFanout int
	// Seed derives every shard's RNG stream.
	Seed int64
}

// Fleet is a running multiplexed detector fleet.
type Fleet struct {
	cfg      Config
	shards   []*shard
	numAggs  int
	epoch    uint32
	clock    sim.Time
	root     core.Summary
	ingestMu sync.Mutex
	ingErr   error
}

// New builds a fleet at virtual time 0; defaults are filled in place.
func New(cfg Config) (*Fleet, error) {
	if cfg.Clusters <= 0 || cfg.ClusterSize <= 0 {
		return nil, fmt.Errorf("fleet: need positive Clusters and ClusterSize")
	}
	if cfg.Core.TMax == 0 {
		cfg.Core = core.Config{TMin: 2, TMax: 16}
	}
	if err := cfg.Core.Validate(); err != nil {
		return nil, err
	}
	if cfg.Burst != nil {
		if err := cfg.Burst.Validate(); err != nil {
			return nil, err
		}
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 64
	}
	cfg.Shards = min(cfg.Shards, cfg.Clusters)
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.LinkDelay <= 0 {
		cfg.LinkDelay = 1
	}
	if cfg.Epoch <= 0 {
		cfg.Epoch = 2 * sim.Time(cfg.Core.TMax)
	}
	if cfg.AggFanout <= 0 {
		cfg.AggFanout = 64
	}
	if cfg.Clusters > 1<<20 || cfg.ClusterSize > 1<<16 {
		return nil, fmt.Errorf("fleet: %d x %d exceeds supported scale", cfg.Clusters, cfg.ClusterSize)
	}

	numAggs := (cfg.Clusters + cfg.AggFanout - 1) / cfg.AggFanout
	f := &Fleet{cfg: cfg, numAggs: numAggs}
	perShard := (cfg.Clusters + cfg.Shards - 1) / cfg.Shards
	respBound := sim.Time(cfg.Core.ResponderBound())
	// Detection latency cannot exceed the corrected coordinator bound
	// plus one round and the wire; everything past that is an overflow
	// bucket (asserted empty under loss-free runs).
	latCap := int(cfg.Core.CoordinatorDetectionBound()) + int(cfg.Core.TMax) + 2*int(cfg.LinkDelay) + 1
	tmax := sim.Time(cfg.Core.TMax)

	for id := 0; id < cfg.Shards; id++ {
		lo := min(id*perShard, cfg.Clusters)
		hi := min(lo+perShard, cfg.Clusters)
		nCl := hi - lo
		nEp := nCl * cfg.ClusterSize
		s := &shard{
			id:          id,
			numShards:   cfg.Shards,
			aggFanout:   uint32(cfg.AggFanout),
			wheel:       sim.NewTimerWheel(),
			rng:         rand.New(rand.NewSource(cfg.Seed + int64(id)*0x9E3779B9)),
			cfg:         cfg.Core,
			respBound:   respBound,
			linkDelay:   cfg.LinkDelay,
			lossProb:    cfg.LossProb,
			burst:       cfg.Burst != nil,
			killEvery:   cfg.KillEvery,
			clusterSize: int32(cfg.ClusterSize),
			clusterLo:   int32(lo),
			wait:        make([]int32, nEp),
			flags:       make([]uint8, nEp),
			watch:       make([]sim.WheelTimer, nEp),
			killAt:      make([]int64, nEp),
			clAlive:     make([]int32, nCl),
			clDet:       make([]uint32, nCl),
			heard:       make([]uint32, cfg.Shards),
			outbuf:      make([][]byte, cfg.Shards),
			latHist:     make([]uint32, latCap),
		}
		if cfg.Burst != nil {
			s.clGE = make([]faults.GEProcess, nCl)
			for i := range s.clGE {
				s.clGE[i] = cfg.Burst.NewProcess()
			}
		}
		for cl := 0; cl < nCl; cl++ {
			s.clAlive[cl] = int32(cfg.ClusterSize)
		}
		for e := 0; e < nEp; e++ {
			// Stagger round phases across the tmax window so load spreads
			// over ticks instead of spiking; the stagger is a pure
			// function of the global row, so it is layout-deterministic.
			g := lo*cfg.ClusterSize + e
			stagger := sim.Time(g) % tmax
			s.wait[e] = int32(tmax)
			s.wheel.Schedule(stagger+tmax, kRound<<kindShift|uint32(e))
			s.watch[e] = s.wheel.Schedule(stagger+cfg.LinkDelay+respBound, kWatch<<kindShift|uint32(e))
		}
		if cfg.KillEvery > 0 && nEp > 0 {
			s.wheel.Schedule(cfg.KillEvery, kKill<<kindShift)
		}
		f.shards = append(f.shards, s)
	}
	// Aggregator a lives on shard a mod Shards, at local index a div
	// Shards; summary ids follow the cluster id space.
	for a := 0; a < numAggs; a++ {
		host := f.shards[a%cfg.Shards]
		lo := a * cfg.AggFanout
		hi := min(lo+cfg.AggFanout, cfg.Clusters)
		host.aggs = append(host.aggs, aggregator{
			id:       uint32(cfg.Clusters + a),
			children: hi - lo,
		})
	}
	return f, nil
}

// Now returns the fleet's virtual clock (the last completed barrier).
func (f *Fleet) Now() sim.Time { return f.clock }

// Epochs returns the number of completed epochs.
func (f *Fleet) Epochs() uint32 { return f.epoch }

// Root returns the fleet-wide rollup from the most recent barrier.
func (f *Fleet) Root() core.Summary { return f.root }

// Endpoints returns the monitored endpoint count.
func (f *Fleet) Endpoints() int { return f.cfg.Clusters * f.cfg.ClusterSize }

// RunEpochs advances the fleet n epochs: each shard runs its slice of
// virtual time independently, then a barrier exchanges the batched
// cross-shard buffers and rolls summaries up to the root.
func (f *Fleet) RunEpochs(n int) error {
	serial := min(f.cfg.Workers, len(f.shards)) <= 1
	for i := 0; i < n; i++ {
		f.epoch++
		epoch := f.epoch
		end := f.clock + f.cfg.Epoch
		if serial {
			// Closure-free inline path: one epoch of a warmed-up fleet
			// performs zero allocations (TestFleetSteadyStateAllocFree).
			for _, s := range f.shards {
				s.runUntil(end)
				s.emitSummaries(epoch)
			}
			f.clock = end
			for _, s := range f.shards {
				if err := s.ingest(f.shards, epoch); err != nil {
					return err
				}
			}
		} else {
			f.each(func(s *shard) {
				s.runUntil(end)
				s.emitSummaries(epoch)
			})
			f.clock = end
			f.each(func(s *shard) {
				if err := s.ingest(f.shards, epoch); err != nil {
					f.ingestMu.Lock()
					if f.ingErr == nil {
						f.ingErr = err
					}
					f.ingestMu.Unlock()
				}
			})
			if f.ingErr != nil {
				return f.ingErr
			}
		}
		f.rollup(epoch)
	}
	return nil
}

// rollup merges every aggregator into the root summary, in global
// aggregator order (serial — the tree's top level is tiny).
func (f *Fleet) rollup(epoch uint32) {
	root := core.Summary{
		Cluster: uint32(f.cfg.Clusters + f.numAggs),
		Epoch:   epoch,
	}
	for a := 0; a < f.numAggs; a++ {
		host := f.shards[a%f.cfg.Shards]
		ag := &host.aggs[a/f.cfg.Shards]
		if ag.seen < ag.children {
			ag.stale += uint64(ag.children - ag.seen)
		}
		root.Add(ag.sum)
	}
	f.root = root
}

// each applies fn to every shard, inline with one worker or over a
// shard-claiming goroutine pool otherwise. Shards are disjoint, so fn
// application order is unobservable.
func (f *Fleet) each(fn func(*shard)) {
	workers := min(f.cfg.Workers, len(f.shards))
	if workers <= 1 {
		for _, s := range f.shards {
			fn(s)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(f.shards) {
					return
				}
				fn(f.shards[i])
			}
		}()
	}
	wg.Wait()
}

// Stats is the fleet-wide counter roll-up.
type Stats struct {
	Endpoints int
	Clusters  int
	Epochs    uint32
	// Beats counts protocol rounds closed (one beat evaluated per round).
	Beats   uint64
	Replies uint64
	Losses  uint64
	// Kills/Detections/FalseSuspects/Inactivations follow the injector
	// and the protocol's verdicts.
	Kills          uint64
	Detections     uint64
	FalseSuspects  uint64
	Inactivations  uint64
	// MissedDeadlines counts virtual-time monotonicity violations in the
	// shard loops (always 0; asserted by the CI smoke run).
	MissedDeadlines uint64
	// StaleChildren counts aggregator children missing at a barrier.
	StaleChildren uint64
	// SilentLinks counts (src,dst) shard pairs whose liveness beat did
	// not arrive in the most recent barrier (always 0).
	SilentLinks uint64
	// LatencyOverflow counts detections past the histogram cap (0 unless
	// loss delays detection past the corrected bound).
	LatencyOverflow uint64
	// Root is the fleet-wide liveness summary at the last barrier.
	Root core.Summary
}

// Stats merges every shard's counters.
func (f *Fleet) Stats() Stats {
	st := Stats{
		Endpoints: f.Endpoints(),
		Clusters:  f.cfg.Clusters,
		Epochs:    f.epoch,
		Root:      f.root,
	}
	for _, s := range f.shards {
		st.Beats += s.beats
		st.Replies += s.replies
		st.Losses += s.losses
		st.Kills += s.kills
		st.Detections += s.detections
		st.FalseSuspects += s.falseSuspects
		st.Inactivations += s.inactivations
		st.MissedDeadlines += s.missedDeadlines
		st.LatencyOverflow += s.latOverflow
		for _, ag := range s.aggs {
			st.StaleChildren += ag.stale
		}
		if f.epoch > 0 {
			for _, ep := range s.heard {
				if ep != f.epoch {
					st.SilentLinks++
				}
			}
		}
	}
	return st
}

// DetectionLatency merges the shards' histograms and returns the p50 and
// p99 detection latencies in ticks, plus the sample count. With no
// detections it returns zeros.
func (f *Fleet) DetectionLatency() (p50, p99 sim.Time, samples uint64) {
	var merged []uint64
	for _, s := range f.shards {
		if merged == nil {
			merged = make([]uint64, len(s.latHist))
		}
		for i, c := range s.latHist {
			merged[i] += uint64(c)
			samples += uint64(c)
		}
	}
	if samples == 0 {
		return 0, 0, 0
	}
	pick := func(q float64) sim.Time {
		target := uint64(q * float64(samples-1))
		var cum uint64
		for i, c := range merged {
			cum += c
			if cum > target {
				return sim.Time(i)
			}
		}
		return sim.Time(len(merged) - 1)
	}
	return pick(0.50), pick(0.99), samples
}

// Digest folds every shard's protocol state and counters into one FNV-1a
// hash, in shard order. Two runs with the same Config (Workers aside)
// must produce the same digest — the determinism pin for the fleet.
func (f *Fleet) Digest() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xFF
			h *= prime64
			v >>= 8
		}
	}
	for _, s := range f.shards {
		for _, w := range s.wait {
			mix(uint64(uint32(w)))
		}
		for _, fl := range s.flags {
			mix(uint64(fl))
		}
		for _, k := range s.killAt {
			mix(uint64(k))
		}
		for _, a := range s.clAlive {
			mix(uint64(uint32(a)))
		}
		mix(s.beats)
		mix(s.replies)
		mix(s.losses)
		mix(s.kills)
		mix(s.detections)
		mix(s.falseSuspects)
		mix(s.inactivations)
		mix(s.missedDeadlines)
		for _, c := range s.latHist {
			mix(uint64(c))
		}
	}
	mix(uint64(f.root.Total)<<32 | uint64(f.root.Alive))
	mix(uint64(f.root.Detections))
	mix(uint64(f.epoch))
	return h
}
