package fleet

import (
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/sim"
)

func testConfig(workers int) Config {
	return Config{
		Clusters:    96,
		ClusterSize: 16,
		Shards:      8,
		Workers:     workers,
		Core:        core.Config{TMin: 2, TMax: 16},
		LossProb:    0.02,
		KillEvery:   64,
		AggFanout:   16,
		Seed:        42,
	}
}

// The fleet's central determinism pin: the full state digest is
// byte-identical at any worker count, because workers claim whole shards
// and cross-shard traffic only moves at barriers. Run under -race this
// also proves the epoch barriers are sound.
func TestFleetDigestIdenticalAcrossWorkers(t *testing.T) {
	var want uint64
	var wantRoot core.Summary
	for i, workers := range []int{1, 2, 4, 8} {
		f, err := New(testConfig(workers))
		if err != nil {
			t.Fatal(err)
		}
		if err := f.RunEpochs(20); err != nil {
			t.Fatal(err)
		}
		got := f.Digest()
		if i == 0 {
			want, wantRoot = got, f.Root()
			continue
		}
		if got != want {
			t.Errorf("workers=%d digest %#x, want %#x (workers=1)", workers, got, want)
		}
		if f.Root() != wantRoot {
			t.Errorf("workers=%d root %+v, want %+v", workers, f.Root(), wantRoot)
		}
	}
}

// Same config, same seed, two fleets: identical digests epoch by epoch.
func TestFleetRunIsReproducible(t *testing.T) {
	a, err := New(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	for ep := 0; ep < 12; ep++ {
		if err := a.RunEpochs(1); err != nil {
			t.Fatal(err)
		}
		if err := b.RunEpochs(1); err != nil {
			t.Fatal(err)
		}
		if da, db := a.Digest(), b.Digest(); da != db {
			t.Fatalf("epoch %d: digests diverged (%#x vs %#x)", ep+1, da, db)
		}
	}
}

// With no loss and no kills, nothing is ever suspected: the root summary
// reports every endpoint alive every epoch, every shard liveness beat
// lands, and no aggregator child goes stale.
func TestFleetQuiescentAllAlive(t *testing.T) {
	cfg := testConfig(1)
	cfg.LossProb = 0
	cfg.KillEvery = 0
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.RunEpochs(30); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	want := uint32(f.Endpoints())
	if st.Root.Total != want || st.Root.Alive != want {
		t.Errorf("root %d/%d alive, want %d/%d", st.Root.Alive, st.Root.Total, want, want)
	}
	if st.Root.Detections != 0 || st.Detections != 0 || st.FalseSuspects != 0 || st.Inactivations != 0 {
		t.Errorf("quiescent fleet produced verdicts: %+v", st)
	}
	if st.MissedDeadlines != 0 {
		t.Errorf("missed deadlines: %d", st.MissedDeadlines)
	}
	if st.SilentLinks != 0 {
		t.Errorf("silent shard links: %d", st.SilentLinks)
	}
	if st.StaleChildren != 0 {
		t.Errorf("stale aggregator children: %d", st.StaleChildren)
	}
	if st.Losses != 0 {
		t.Errorf("losses on a loss-free fleet: %d", st.Losses)
	}
}

// With kills but no loss, every killed endpoint is detected within the
// paper's corrected coordinator bound (plus one round of send phase and
// the wire), and no live endpoint is ever suspected.
func TestFleetDetectionWithinBound(t *testing.T) {
	cfg := testConfig(1)
	cfg.LossProb = 0
	cfg.KillEvery = 40
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.RunEpochs(60); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.Kills == 0 || st.Detections == 0 {
		t.Fatalf("injector idle: %d kills, %d detections", st.Kills, st.Detections)
	}
	if st.FalseSuspects != 0 {
		t.Errorf("false suspicions without loss: %d", st.FalseSuspects)
	}
	if st.LatencyOverflow != 0 {
		t.Errorf("detections past the latency bound: %d", st.LatencyOverflow)
	}
	p50, p99, n := f.DetectionLatency()
	if n == 0 {
		t.Fatal("no latency samples")
	}
	bound := sim.Time(cfg.Core.CoordinatorDetectionBound()) +
		sim.Time(cfg.Core.TMax) + 2*cfg.LinkDelay + 2*1 // LinkDelay defaulted to 1
	if p99 > bound || p50 > p99 {
		t.Errorf("latency p50=%d p99=%d out of order or past bound %d", p50, p99, bound)
	}
}

// Cluster alive counts in the root always equal the flag-derived truth.
func TestFleetRollupMatchesFlags(t *testing.T) {
	f, err := New(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	for ep := 0; ep < 25; ep++ {
		if err := f.RunEpochs(1); err != nil {
			t.Fatal(err)
		}
		var alive, det uint32
		for _, s := range f.shards {
			for _, fl := range s.flags {
				if fl&fSuspected == 0 {
					alive++
				}
			}
			det += uint32(s.detections)
		}
		root := f.Root()
		if root.Alive != alive || root.Detections != det {
			t.Fatalf("epoch %d: root %d alive/%d det, flags say %d/%d",
				ep+1, root.Alive, root.Detections, alive, det)
		}
		if root.Total != uint32(f.Endpoints()) {
			t.Fatalf("epoch %d: root total %d, want %d", ep+1, root.Total, f.Endpoints())
		}
	}
}

// Burst (Gilbert–Elliott) loss mode exercises the shared-fate chain per
// cluster and stays deterministic across worker counts.
func TestFleetBurstLossDeterministic(t *testing.T) {
	mk := func(workers int) uint64 {
		cfg := testConfig(workers)
		cfg.LossProb = 0
		cfg.Burst = &faults.GilbertElliott{PGoodBad: 0.05, PBadGood: 0.3, LossBad: 0.9}
		f, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.RunEpochs(15); err != nil {
			t.Fatal(err)
		}
		if f.Stats().Losses == 0 {
			t.Fatal("burst channel lost nothing")
		}
		return f.Digest()
	}
	if a, b := mk(1), mk(4); a != b {
		t.Errorf("burst digests diverged across workers: %#x vs %#x", a, b)
	}
}

// The steady-state per-epoch path — wheel pops, round closes, watchdog
// rearms, summary emission, batch ingest, rollup — allocates nothing.
// This is the fleet's half of the simulator's 0-alloc standard.
func TestFleetSteadyStateAllocFree(t *testing.T) {
	cfg := testConfig(1)
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Warm up: outbufs grow to steady-state capacity, the wheel's node
	// arena and due buffer reach their working set.
	if err := f.RunEpochs(10); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(50, func() {
		if err := f.RunEpochs(1); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("steady-state epoch allocates %.1f times, want 0", avg)
	}
}

// Codec round trip: a batch of beats and summaries decodes to exactly
// what was appended, in order.
func TestFleetCodecRoundTrip(t *testing.T) {
	var buf []byte
	beats := []core.Beat{{From: 0, Stay: true}, {From: 63, Stay: true, Inc: 5}}
	sums := []core.Summary{
		{Cluster: 0, Epoch: 1, Total: 64, Alive: 64},
		{Cluster: 1<<20 - 1, Epoch: 7, Total: 64, Alive: 1, Detections: 63},
	}
	buf = appendBeatFrame(buf, beats[0])
	buf = appendSummaryFrame(buf, sums[0])
	buf = appendSummaryFrame(buf, sums[1])
	buf = appendBeatFrame(buf, beats[1])

	d := batchDecoder{buf: buf}
	wantTags := []byte{frameBeat, frameSummary, frameSummary, frameBeat}
	bi, si := 0, 0
	for i, want := range wantTags {
		if d.done() {
			t.Fatalf("batch exhausted at frame %d", i)
		}
		tag, beat, sum, err := d.next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if tag != want {
			t.Fatalf("frame %d: tag %d, want %d", i, tag, want)
		}
		switch tag {
		case frameBeat:
			if beat != beats[bi] {
				t.Errorf("beat %d: %+v, want %+v", bi, beat, beats[bi])
			}
			bi++
		case frameSummary:
			if sum != sums[si] {
				t.Errorf("summary %d: %+v, want %+v", si, sum, sums[si])
			}
			si++
		}
	}
	if !d.done() {
		t.Errorf("%d trailing bytes after batch", len(d.buf))
	}
}

// Malformed batches surface ErrBadFrame instead of panicking.
func TestFleetCodecRejectsGarbage(t *testing.T) {
	for _, buf := range [][]byte{
		{frameBeat, 1, 0},       // truncated beat
		{frameSummary, 1, 2, 3}, // truncated summary
		{99},                    // unknown tag
	} {
		d := batchDecoder{buf: buf}
		if _, _, _, err := d.next(); err == nil {
			t.Errorf("batch %v decoded without error", buf)
		}
	}
}

// Summary wire encoding round-trips and Add merges fields the way the
// aggregation tree expects.
func TestSummaryWireAndAdd(t *testing.T) {
	s := core.Summary{Cluster: 9, Epoch: 3, Total: 100, Alive: 97, Detections: 3}
	enc := s.AppendMarshal(nil)
	got, rest, err := core.UnmarshalSummary(enc)
	if err != nil || len(rest) != 0 || got != s {
		t.Fatalf("round trip: %+v rest=%d err=%v", got, len(rest), err)
	}
	if _, _, err := core.UnmarshalSummary(enc[:10]); err == nil {
		t.Error("truncated summary decoded without error")
	}
	agg := core.Summary{Cluster: 500, Epoch: 2}
	agg.Add(s)
	agg.Add(core.Summary{Cluster: 10, Epoch: 5, Total: 50, Alive: 50})
	want := core.Summary{Cluster: 500, Epoch: 5, Total: 150, Alive: 147, Detections: 3}
	if agg != want {
		t.Errorf("Add: %+v, want %+v", agg, want)
	}
}

func TestFleetConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("zero config accepted")
	}
	if _, err := New(Config{Clusters: 1, ClusterSize: 1, Core: core.Config{TMin: 10, TMax: 2}}); err == nil {
		t.Error("inverted tmin/tmax accepted")
	}
	if _, err := New(Config{Clusters: 1 << 21, ClusterSize: 1}); err == nil {
		t.Error("oversized fleet accepted")
	}
	// Shards clamp to Clusters; defaults fill in.
	f, err := New(Config{Clusters: 3, ClusterSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(f.shards); got != 3 {
		t.Errorf("3 clusters spread over %d shards, want 3", got)
	}
	if err := f.RunEpochs(5); err != nil {
		t.Fatal(err)
	}
}
