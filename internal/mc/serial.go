package mc

// Serial fast path for Workers <= 1.
//
// The level-synchronised parallel BFS (parallel.go) is byte-identical at
// any worker count, but its machinery — candidate records, per-shard
// seq-merges, a two-pass commit — is pure coordination overhead when one
// goroutine explores. The pr4 rows in BENCH_mc.json show the cost: the
// single-thread checker dropped from ~1.6M to ~1.2M states/s and from
// ~280 to ~1600 allocs per check. This file restores the direct route: a
// classic BFS that interns successors into a single store segment as it
// discovers them, with no candidate buffers and no merges, while keeping
// the exact observable semantics of the parallel engine so determinism
// pins keep holding:
//
//   - states are committed in seq order (parent id, transition index) —
//     for one worker that is simply discovery order;
//   - the level containing a goal (or crossing the state limit) is still
//     expanded in full, so TransitionsExplored matches;
//   - the goal is only reported for committed states, and a goal in the
//     same level as a limit crossing wins iff it was committed first;
//   - recorded transitions carry the same final global ids (targets past
//     the state limit stay -1, exactly like an unresolved candidate —
//     phase D never runs on a limit hit).
//
// The explorer it returns is the same struct the parallel path builds
// (single segment, single workerState), so rebuildTrace and mergeTrans
// work unchanged.

import (
	"fmt"

	"repro/internal/ta"
)

// exploreSerial is the Workers<=1 route around the parallel machinery.
// Outputs are byte-identical to explore() with any worker count.
func exploreSerial(n *ta.Network, goal, prune func(*ta.State) bool, limit int, withTrans bool) (*explorer, int, int, int, error) {
	init := n.Initial()
	e := &explorer{
		goal:      goal,
		prune:     prune,
		limit:     limit,
		withTrans: withTrans,
		numLocs:   len(init.Locs),
		numClocks: len(init.Clocks),
		keyLen:    init.KeyLen(),
	}
	seg := &segment{stateStore: *newStateStore(minTableSize)}
	e.segs[0] = seg
	ws := &workerState{ctx: n.NewSuccCtx(), scratch: init.Clone()}
	e.ws = []*workerState{ws}

	key := init.AppendKey(make([]byte, 0, e.keyLen))
	local, _ := seg.internHashed(key, hashKey(key))
	seg.gids = append(seg.gids, 0)
	e.index = append(e.index, packLoc(0, local))
	e.info = append(e.info, nodeInfo{parent: -1})
	if goal != nil && goal(&init) {
		return e, 0, 1, 0, nil
	}

	levelStart, levelEnd := 0, 1
	for levelStart < levelEnd {
		goalID := -1
		limitHit := false
		for gid := levelStart; gid < levelEnd; gid++ {
			e.expandStateSerial(ws, gid, &goalID, &limitHit)
		}
		if goalID >= 0 {
			return e, goalID, len(e.index), ws.transitions, nil
		}
		if limitHit {
			return e, -1, len(e.index), ws.transitions,
				fmt.Errorf("%w: %d states", ErrStateLimit, e.limit)
		}
		levelStart, levelEnd = levelEnd, len(e.index)
	}
	return e, -1, len(e.index), ws.transitions, nil
}

//hbvet:noalloc
// expandStateSerial generates gid's successors and commits first
// occurrences directly: lookup, intern, assign the global id, check the
// goal — one pass, no candidate records. Same-level duplicates dedup
// against the live table (the parallel engine's frozen-probe + seq-merge
// reaches the identical first-occurrence winner, because serial discovery
// order IS seq order).
func (e *explorer) expandStateSerial(ws *workerState, gid int, goalID *int, limitHit *bool) {
	ws.scratch.DecodeKey(e.key(gid), e.numLocs, e.numClocks)
	//lint:allow noalloc-closure prune/goal predicates are exploration configuration; the Options contract requires pure, allocation-free predicates
	if e.prune != nil && e.prune(&ws.scratch) {
		return
	}
	// Successors recycles ws.buf per the SuccCtx contract (see workerState).
	ws.buf = ws.ctx.Successors(&ws.scratch, ws.buf[:0])
	ws.transitions += len(ws.buf)
	seg := e.segs[0]
	base := uint64(gid) << seqTransBits
	for i := range ws.buf {
		tr := &ws.buf[i]
		ws.keyBuf = tr.Target.AppendKey(ws.keyBuf[:0])
		h := hashKey(ws.keyBuf)
		if local, ok := seg.lookupHashed(ws.keyBuf, h); ok {
			if e.withTrans {
				ws.trans = append(ws.trans, rawTrans{seq: base | uint64(i), from: int32(gid), to: seg.gids[local], label: tr.Label})
			}
			continue
		}
		if *limitHit || len(e.index) >= e.limit {
			// Past the limit nothing commits; the target stays unresolved
			// (-1), matching a candidate the parallel engine never ran
			// phase D over. The rest of the level still expands so the
			// transition count matches.
			*limitHit = true
			if e.withTrans {
				ws.trans = append(ws.trans, rawTrans{seq: base | uint64(i), from: int32(gid), to: -1, label: tr.Label})
			}
			continue
		}
		local, _ := seg.internHashed(ws.keyBuf, h)
		newGid := len(e.index)
		seg.gids = append(seg.gids, int32(newGid))
		e.index = append(e.index, packLoc(0, local))
		e.info = append(e.info, nodeInfo{parent: gid, label: tr.Label, delay: tr.Delay})
		//lint:allow noalloc-closure prune/goal predicates are exploration configuration; the Options contract requires pure, allocation-free predicates
		if *goalID < 0 && e.goal != nil && e.goal(&tr.Target) {
			*goalID = newGid
		}
		if e.withTrans {
			ws.trans = append(ws.trans, rawTrans{seq: base | uint64(i), from: int32(gid), to: int32(newGid), label: tr.Label})
		}
	}
}
