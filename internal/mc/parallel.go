package mc

// Level-synchronised parallel BFS over a sharded packed state store.
//
// The explorer advances the frontier one BFS level at a time; every level
// runs four phases separated by barriers:
//
//	A (parallel) — workers claim chunks of the level's global-id range
//	  from an atomic counter and expand each state through a per-worker
//	  ta.SuccCtx. Every successor key is hashed once; the hash picks a
//	  shard, and a read-only probe of that shard's (frozen) table filters
//	  out states committed in earlier levels. Survivors are recorded as
//	  candidates, tagged with a seq number (parent global id, transition
//	  index) that totally orders them in sequential discovery order.
//	B (parallel) — workers claim whole shards; the owner of a shard merges
//	  the workers' candidate lists for it in seq order, dedups against its
//	  own segment table (a hit can only be a same-level duplicate, because
//	  phase A already filtered earlier levels), and appends first
//	  occurrences to the segment arena.
//	C (serial) — a min-scan merge over the shards' first-occurrence lists
//	  pops new states in global seq order and assigns dense global ids, so
//	  ids, parent links, and the state limit behave exactly as in a
//	  sequential BFS. The first goal hit in seq order is the canonical
//	  counter-example: the same state a one-worker run finds first.
//	D (parallel, LTS builds only) — workers resolve the recorded
//	  transitions whose targets were candidates to their final global ids.
//
// Because shard assignment depends only on the state hash, the shard count
// is a constant, candidate order is restored by seq-merge, and global ids
// are assigned serially in seq order, every output — state count,
// transition count, trace, LTS — is identical at any worker count.
// Ownership is phase-exclusive (workers never write a structure another
// goroutine can touch in the same phase), so no locks are needed at all.

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/ta"
)

// shardBits/numShards fix the segment count of the sharded store. The
// count is a constant (not derived from the worker count) so the shard
// assignment of every state — and with it every result — is independent
// of how many workers explore.
const (
	shardBits = 4
	numShards = 1 << shardBits
)

// seqTransBits is the width of the per-parent transition index inside a
// seq tag. No state in these models has anywhere near 2^20 outgoing
// transitions; expandState panics if one ever does.
const seqTransBits = 20

// segment is one shard of the state store: a packed stateStore plus the
// mapping from its local ids to global BFS ids.
type segment struct {
	stateStore
	// gids maps local ids to global ids (assigned serially in phase C, in
	// sequential discovery order).
	gids []int32
	// news lists this level's first-occurrence candidates in seq order,
	// aligned with the local ids the segment assigned this level.
	news []newsRef
}

// newsRef points phase C at the worker-local candidate record of a
// first-occurrence state.
type newsRef struct {
	seq uint64
	w   int32
	ci  int32
}

// candidate is a possibly-new state generated in phase A: its key lives in
// the worker's key arena, its seq tag fixes its place in sequential
// discovery order.
type candidate struct {
	seq     uint64
	hash    uint64
	off     uint32 // key offset in the worker's arena (keys have fixed length)
	parent  int32
	local   int32 // local id within shard, resolved in phase B
	shard   uint8
	delay   bool
	goalHit bool
	label   string
}

// rawTrans is a transition recorded during phase A for LTS builds; to is
// the target's global id, or -1 until the candidate it points at resolves.
type rawTrans struct {
	seq   uint64
	from  int32
	to    int32
	cand  int32
	label string
}

// workerState is the per-goroutine exploration context.
//
// ctx is this worker's private ta.SuccCtx: SuccCtx.Successors is not
// reentrant — each call recycles the context's scratch masks and, with a
// recycled buf, the previous call's Transition slice (hbvet's
// buffer-reuse check enforces the caller side of that contract). One
// context per worker keeps every call data-race-free and the recycled
// buffers thread-local.
type workerState struct {
	ctx      *ta.SuccCtx
	scratch  ta.State
	buf      []ta.Transition
	keyBuf   []byte
	cands    []candidate
	perShard [numShards][]int32 // candidate indices by shard, seq-sorted
	trans    []rawTrans
	// levelTransStart marks where this level's transitions begin, for the
	// phase-D fixup.
	levelTransStart int
	// transitions counts successors generated across all levels.
	transitions int
}

func (ws *workerState) resetLevel() {
	ws.keyBuf = ws.keyBuf[:0]
	ws.cands = ws.cands[:0]
	for s := range ws.perShard {
		ws.perShard[s] = ws.perShard[s][:0]
	}
	ws.levelTransStart = len(ws.trans)
}

// explorer holds the sharded store and the global id maps shared by all
// phases.
type explorer struct {
	goal      func(*ta.State) bool
	prune     func(*ta.State) bool
	limit     int
	withTrans bool

	numLocs, numClocks, keyLen int

	segs [numShards]*segment
	// index maps global ids to (shard, local) pairs.
	index []uint64
	info  []nodeInfo

	ws []*workerState
}

func packLoc(shard, local int) uint64 { return uint64(shard)<<32 | uint64(uint32(local)) }

// key returns the packed key bytes of global id gid. The slice aliases a
// segment arena; it is stable within a phase (arenas only grow in phase B).
func (e *explorer) key(gid int) []byte {
	loc := e.index[gid]
	return e.segs[loc>>32].key(int(uint32(loc)))
}

// explore runs the level-synchronised BFS from the network's initial
// configuration. It returns the explorer for trace/LTS reconstruction, the
// global id of the canonical goal state (-1 if none was reached), and the
// state/transition counts. All outputs are identical at any worker count.
func explore(n *ta.Network, goal, prune func(*ta.State) bool, limit, workers int, withTrans bool) (*explorer, int, int, int, error) {
	if workers < 1 {
		workers = 1
	}
	if limit > math.MaxInt32-1 {
		limit = math.MaxInt32 - 1 // ids are int32 internally
	}
	if workers == 1 {
		// One goroutine gains nothing from the candidate/merge machinery;
		// the direct-commit BFS in serial.go produces identical outputs at
		// a fraction of the coordination cost (see BENCH_mc.json pr4 vs
		// pr2 rows).
		return exploreSerial(n, goal, prune, limit, withTrans)
	}
	init := n.Initial()
	e := &explorer{
		goal:      goal,
		prune:     prune,
		limit:     limit,
		withTrans: withTrans,
		numLocs:   len(init.Locs),
		numClocks: len(init.Clocks),
		keyLen:    init.KeyLen(),
	}
	for s := range e.segs {
		e.segs[s] = &segment{stateStore: *newStateStore(minTableSize)}
	}
	e.ws = make([]*workerState, workers)
	for i := range e.ws {
		// NewSuccCtx compiles the network on the first call, before any
		// goroutine runs; afterwards the network is read-only.
		e.ws[i] = &workerState{ctx: n.NewSuccCtx(), scratch: init.Clone()}
	}

	key := init.AppendKey(make([]byte, 0, e.keyLen))
	h := hashKey(key)
	s0 := int(h >> (64 - shardBits))
	local, _ := e.segs[s0].internHashed(key, h)
	e.segs[s0].gids = append(e.segs[s0].gids, 0)
	e.index = append(e.index, packLoc(s0, local))
	e.info = append(e.info, nodeInfo{parent: -1})
	if goal != nil && goal(&init) {
		return e, 0, 1, 0, nil
	}

	levelStart, levelEnd := 0, 1
	for levelStart < levelEnd {
		// Phase A: expand the level.
		next := int64(levelStart)
		chunk := (levelEnd - levelStart + workers*4 - 1) / (workers * 4)
		chunk = max(1, min(chunk, 256))
		runPhase(workers, func(w int) { e.expandWorker(e.ws[w], &next, levelEnd, chunk) })

		// Phase B: per-shard dedup and commit.
		var shardNext int64
		runPhase(workers, func(w int) { e.claimShards(&shardNext) })

		// Phase C: serial global id assignment in seq order.
		goalID, limitHit := e.assignIDs()
		if goalID >= 0 {
			// Goal wins over a same-level limit hit: it was committed
			// before the limit crossing, exactly as a sequential check
			// would have returned it first.
			return e, goalID, len(e.index), e.sumTransitions(), nil
		}
		if limitHit {
			return e, -1, len(e.index), e.sumTransitions(),
				fmt.Errorf("%w: %d states", ErrStateLimit, e.limit)
		}

		// Phase D: resolve candidate targets in recorded transitions.
		if e.withTrans {
			runPhase(workers, func(w int) { e.resolveTrans(e.ws[w]) })
		}

		levelStart, levelEnd = levelEnd, len(e.index)
		for _, ws := range e.ws {
			ws.resetLevel()
		}
		for _, sg := range e.segs {
			sg.news = sg.news[:0]
		}
	}
	return e, -1, len(e.index), e.sumTransitions(), nil
}

// runPhase executes fn(w) for every worker and waits for all of them; a
// single worker runs inline with no goroutine.
func runPhase(workers int, fn func(w int)) {
	if workers == 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			fn(w)
		}()
	}
	wg.Wait()
}

// expandWorker claims chunks of the level's id range until it is drained.
// Chunks are claimed in increasing order, so the worker's candidate and
// transition lists come out seq-sorted.
func (e *explorer) expandWorker(ws *workerState, next *int64, levelEnd, chunk int) {
	for {
		lo := int(atomic.AddInt64(next, int64(chunk))) - chunk
		if lo >= levelEnd {
			return
		}
		hi := min(lo+chunk, levelEnd)
		for gid := lo; gid < hi; gid++ {
			e.expandState(ws, gid)
		}
	}
}

//hbvet:noalloc
func (e *explorer) expandState(ws *workerState, gid int) {
	ws.scratch.DecodeKey(e.key(gid), e.numLocs, e.numClocks)
	//lint:allow noalloc-closure prune/goal predicates are exploration configuration; the Options contract requires pure, allocation-free predicates
	if e.prune != nil && e.prune(&ws.scratch) {
		return
	}
	// Per the SuccCtx contract (see workerState), the result goes straight
	// back into ws.buf and is consumed before this worker's next call.
	ws.buf = ws.ctx.Successors(&ws.scratch, ws.buf[:0])
	ws.transitions += len(ws.buf)
	if len(ws.buf) >= 1<<seqTransBits {
		//lint:allow hot-path-alloc cold panic path; no model approaches 2^20 outgoing transitions
		panic(fmt.Sprintf("mc: state fan-out %d overflows seq tag", len(ws.buf)))
	}
	base := uint64(gid) << seqTransBits
	for i := range ws.buf {
		tr := &ws.buf[i]
		seq := base | uint64(i)
		off := len(ws.keyBuf)
		ws.keyBuf = tr.Target.AppendKey(ws.keyBuf)
		key := ws.keyBuf[off:]
		h := hashKey(key)
		sh := int(h >> (64 - shardBits))
		seg := e.segs[sh]
		if local, ok := seg.lookupHashed(key, h); ok {
			// Committed in an earlier level; the probe is read-only
			// against a table frozen for the whole phase.
			ws.keyBuf = ws.keyBuf[:off]
			if e.withTrans {
				ws.trans = append(ws.trans, rawTrans{seq: seq, from: int32(gid), to: seg.gids[local], label: tr.Label})
			}
			continue
		}
		ci := int32(len(ws.cands))
		ws.cands = append(ws.cands, candidate{
			seq:    seq,
			hash:   h,
			off:    uint32(off),
			parent: int32(gid),
			local:  -1,
			shard:  uint8(sh),
			delay:  tr.Delay,
			label:  tr.Label,
			// The goal is evaluated here, while the target is live in the
			// successor buffer; only the first occurrence's verdict is
			// ever used. Concurrent calls require a pure goal predicate
			// (see Options.Workers).
			//lint:allow noalloc-closure prune/goal predicates are exploration configuration; the Options contract requires pure, allocation-free predicates
			goalHit: e.goal != nil && e.goal(&tr.Target),
		})
		ws.perShard[sh] = append(ws.perShard[sh], ci)
		if e.withTrans {
			ws.trans = append(ws.trans, rawTrans{seq: seq, from: int32(gid), to: -1, cand: ci, label: tr.Label})
		}
	}
}

// claimShards hands out whole shards to workers; each shard is committed
// by exactly one goroutine per level.
func (e *explorer) claimShards(next *int64) {
	for {
		sh := int(atomic.AddInt64(next, 1)) - 1
		if sh >= numShards {
			return
		}
		e.commitShard(sh)
	}
}

// commitShard merges the workers' candidate lists for shard sh in seq
// order and appends each first occurrence to the segment. Writing
// cand.local across workers is safe: owners of different shards touch
// disjoint candidate records, and a barrier separates this phase from the
// readers.
func (e *explorer) commitShard(sh int) {
	seg := e.segs[sh]
	var heads [64]int
	if len(e.ws) > len(heads) {
		panic("mc: more than 64 workers")
	}
	for {
		best, bestSeq := -1, uint64(math.MaxUint64)
		for w := range e.ws {
			lst := e.ws[w].perShard[sh]
			if heads[w] < len(lst) {
				if c := &e.ws[w].cands[lst[heads[w]]]; c.seq < bestSeq {
					best, bestSeq = w, c.seq
				}
			}
		}
		if best < 0 {
			return
		}
		wsb := e.ws[best]
		ci := wsb.perShard[sh][heads[best]]
		heads[best]++
		c := &wsb.cands[ci]
		key := wsb.keyBuf[c.off : int(c.off)+e.keyLen]
		local, added := seg.internHashed(key, c.hash)
		c.local = int32(local)
		if added {
			seg.news = append(seg.news, newsRef{seq: c.seq, w: int32(best), ci: ci})
		}
	}
}

// assignIDs is phase C: a serial min-scan merge over the shards'
// first-occurrence lists that commits new states to the global maps in
// seq order. It returns the canonical goal id (first goal hit in seq
// order, -1 if none) and whether the state limit was crossed.
func (e *explorer) assignIDs() (goalID int, limitHit bool) {
	goalID = -1
	var heads [numShards]int
	for {
		best, bestSeq := -1, uint64(math.MaxUint64)
		for s := range e.segs {
			if news := e.segs[s].news; heads[s] < len(news) && news[heads[s]].seq < bestSeq {
				best, bestSeq = s, news[heads[s]].seq
			}
		}
		if best < 0 {
			return goalID, false
		}
		sg := e.segs[best]
		rec := sg.news[heads[best]]
		heads[best]++
		gid := len(e.index)
		if gid >= e.limit {
			return goalID, true
		}
		c := &e.ws[rec.w].cands[rec.ci]
		if int(c.local) != len(sg.gids) {
			panic("mc: shard commit order diverged from seq order")
		}
		sg.gids = append(sg.gids, int32(gid))
		e.index = append(e.index, packLoc(best, int(c.local)))
		e.info = append(e.info, nodeInfo{parent: int(c.parent), label: c.label, delay: c.delay})
		if goalID < 0 && c.goalHit {
			goalID = gid
		}
	}
}

// resolveTrans is phase D: rewrite this level's candidate-targeted
// transitions to their final global ids.
func (e *explorer) resolveTrans(ws *workerState) {
	for i := ws.levelTransStart; i < len(ws.trans); i++ {
		rt := &ws.trans[i]
		if rt.to >= 0 {
			continue
		}
		c := &ws.cands[rt.cand]
		rt.to = e.segs[c.shard].gids[c.local]
	}
}

func (e *explorer) sumTransitions() int {
	total := 0
	for _, ws := range e.ws {
		total += ws.transitions
	}
	return total
}

// mergeTrans merges the workers' transition lists by seq tag, recovering
// the exact (parent id, successor index) emission order of a sequential
// LTS build.
func (e *explorer) mergeTrans() []Trans {
	total := 0
	for _, ws := range e.ws {
		total += len(ws.trans)
	}
	out := make([]Trans, 0, total)
	heads := make([]int, len(e.ws))
	for {
		best, bestSeq := -1, uint64(math.MaxUint64)
		for w, ws := range e.ws {
			if heads[w] < len(ws.trans) && ws.trans[heads[w]].seq < bestSeq {
				best, bestSeq = w, ws.trans[heads[w]].seq
			}
		}
		if best < 0 {
			return out
		}
		rt := &e.ws[best].trans[heads[best]]
		heads[best]++
		out = append(out, Trans{From: int(rt.from), Label: rt.label, To: int(rt.to)})
	}
}
