// Package mc is an explicit-state model checker for the discrete-time
// timed-automata networks of internal/ta.
//
// It offers reachability checking with counter-example reconstruction
// (breadth-first, so witnesses are minimal in transition count), full
// state-space generation into a labelled transition system, strong
// bisimulation minimisation, and weak-trace reduction — the operations the
// accelerated-heartbeat analysis uses in place of UPPAAL and CADP.
package mc

import (
	"errors"

	"repro/internal/ta"
)

// ErrStateLimit reports that exploration hit Options.MaxStates before
// exhausting the state space; verification verdicts are inconclusive.
var ErrStateLimit = errors.New("mc: state limit exceeded")

// Options tunes exploration.
type Options struct {
	// MaxStates bounds exploration; 0 means DefaultMaxStates.
	MaxStates int
	// Prune, if non-nil, stops exploration below states satisfying it
	// (the pruned state itself is recorded but not expanded). Pruning is
	// sound for a reachability goal only if no goal state is reachable
	// through a pruned state — e.g. pruning on a monotone flag the goal
	// negates.
	Prune func(*ta.State) bool
	// Workers is the number of goroutines exploring inside a single
	// check; 0 or 1 means sequential. Every result — state and transition
	// counts, counter-example trace, LTS — is identical at any worker
	// count. When Workers > 1, the goal predicate and Prune are called
	// concurrently from multiple goroutines and must be pure functions of
	// the state they receive.
	Workers int
}

// DefaultMaxStates bounds exploration when Options.MaxStates is zero.
const DefaultMaxStates = 5_000_000

func (o Options) maxStates() int {
	if o.MaxStates <= 0 {
		return DefaultMaxStates
	}
	return o.MaxStates
}

func (o Options) numWorkers() int {
	if o.Workers <= 1 {
		return 1
	}
	return o.Workers
}

// Step is one transition of a witness trace.
type Step struct {
	// Label is the action name ("tick" for delays).
	Label string
	// Delay marks delay steps.
	Delay bool
	// Time is the cumulative virtual time after this step.
	Time int
	// State is the configuration reached by this step.
	State ta.State
}

// Result is the outcome of a reachability check.
type Result struct {
	// Reachable reports whether a goal state was found.
	Reachable bool
	// StatesExplored counts distinct configurations visited.
	StatesExplored int
	// TransitionsExplored counts transitions generated.
	TransitionsExplored int
	// Trace is a minimal-length witness when Reachable: Trace[0] is the
	// initial configuration (empty label), the last step satisfies the
	// goal.
	Trace []Step
}

// CheckReachability explores the network breadth-first from its initial
// configuration and reports whether any configuration satisfying goal is
// reachable, together with a shortest witness.
//
// The check completes the BFS level a goal state is found on before
// returning, and the witness is the first goal state in sequential
// discovery order — shortest, and lexicographically least with respect to
// the network's deterministic successor enumeration order — so counts and
// trace are identical at any Options.Workers value.
func CheckReachability(n *ta.Network, goal func(*ta.State) bool, opts Options) (Result, error) {
	e, goalID, states, transitions, err := explore(n, goal, opts.Prune, opts.maxStates(), opts.numWorkers(), false)
	res := Result{StatesExplored: states, TransitionsExplored: transitions}
	if goalID >= 0 {
		res.Reachable = true
		res.Trace = rebuildTrace(e, goalID)
		return res, nil
	}
	return res, err
}

// nodeInfo records how a state was first reached, for witness
// reconstruction.
type nodeInfo struct {
	parent int
	label  string
	delay  bool
}

// rebuildTrace walks parent pointers back to the root and emits the
// forward trace with cumulative times, decoding each witness state out of
// the sharded store.
func rebuildTrace(e *explorer, goal int) []Step {
	var rev []int
	for at := goal; at != -1; at = e.info[at].parent {
		rev = append(rev, at)
	}
	steps := make([]Step, 0, len(rev))
	now := 0
	for i := len(rev) - 1; i >= 0; i-- {
		id := rev[i]
		if e.info[id].delay {
			now++
		}
		var s ta.State
		s.DecodeKey(e.key(id), e.numLocs, e.numClocks)
		steps = append(steps, Step{
			Label: e.info[id].label,
			Delay: e.info[id].delay,
			Time:  now,
			State: s,
		})
	}
	return steps
}

// Invariant explores the full state space and reports the first violation
// of pred (a safety check: pred must hold in every reachable state). It is
// CheckReachability with the goal negated, packaged for readability.
func Invariant(n *ta.Network, pred func(*ta.State) bool, opts Options) (Result, error) {
	return CheckReachability(n, func(s *ta.State) bool { return !pred(s) }, opts)
}

// CountStates exhaustively generates the reachable state space and returns
// its size; useful for regression-pinning model sizes.
func CountStates(n *ta.Network, opts Options) (states, transitions int, err error) {
	_, _, states, transitions, err = explore(n, nil, opts.Prune, opts.maxStates(), opts.numWorkers(), false)
	return states, transitions, err
}
