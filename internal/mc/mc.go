// Package mc is an explicit-state model checker for the discrete-time
// timed-automata networks of internal/ta.
//
// It offers reachability checking with counter-example reconstruction
// (breadth-first, so witnesses are minimal in transition count), full
// state-space generation into a labelled transition system, strong
// bisimulation minimisation, and weak-trace reduction — the operations the
// accelerated-heartbeat analysis uses in place of UPPAAL and CADP.
package mc

import (
	"errors"
	"fmt"

	"repro/internal/ta"
)

// ErrStateLimit reports that exploration hit Options.MaxStates before
// exhausting the state space; verification verdicts are inconclusive.
var ErrStateLimit = errors.New("mc: state limit exceeded")

// Options tunes exploration.
type Options struct {
	// MaxStates bounds exploration; 0 means DefaultMaxStates.
	MaxStates int
	// Prune, if non-nil, stops exploration below states satisfying it
	// (the pruned state itself is recorded but not expanded). Pruning is
	// sound for a reachability goal only if no goal state is reachable
	// through a pruned state — e.g. pruning on a monotone flag the goal
	// negates.
	Prune func(*ta.State) bool
}

// DefaultMaxStates bounds exploration when Options.MaxStates is zero.
const DefaultMaxStates = 5_000_000

func (o Options) maxStates() int {
	if o.MaxStates <= 0 {
		return DefaultMaxStates
	}
	return o.MaxStates
}

// Step is one transition of a witness trace.
type Step struct {
	// Label is the action name ("tick" for delays).
	Label string
	// Delay marks delay steps.
	Delay bool
	// Time is the cumulative virtual time after this step.
	Time int
	// State is the configuration reached by this step.
	State ta.State
}

// Result is the outcome of a reachability check.
type Result struct {
	// Reachable reports whether a goal state was found.
	Reachable bool
	// StatesExplored counts distinct configurations visited.
	StatesExplored int
	// TransitionsExplored counts transitions generated.
	TransitionsExplored int
	// Trace is a minimal-length witness when Reachable: Trace[0] is the
	// initial configuration (empty label), the last step satisfies the
	// goal.
	Trace []Step
}

// CheckReachability explores the network breadth-first from its initial
// configuration and reports whether any configuration satisfying goal is
// reachable, together with a shortest witness.
func CheckReachability(n *ta.Network, goal func(*ta.State) bool, opts Options) (Result, error) {
	limit := opts.maxStates()
	init := n.Initial()

	st := newStateStore(minTableSize)
	key := init.AppendKey(make([]byte, 0, init.KeyLen()))
	st.intern(key)
	info := []nodeInfo{{parent: -1}}

	res := Result{StatesExplored: 1}
	if goal(&init) {
		res.Reachable = true
		res.Trace = []Step{{State: init.Clone()}}
		return res, nil
	}

	// The store's arena is the only copy of every configuration; states are
	// decoded back out into one reused scratch state for expansion.
	scratch := init.Clone()
	numLocs, numClocks := len(init.Locs), len(init.Clocks)
	var buf []ta.Transition
	for head := 0; head < st.len(); head++ {
		scratch.DecodeKey(st.key(head), numLocs, numClocks)
		if opts.Prune != nil && opts.Prune(&scratch) {
			continue
		}
		buf = n.Successors(&scratch, buf[:0])
		res.TransitionsExplored += len(buf)
		for i := range buf {
			tr := &buf[i]
			key = tr.Target.AppendKey(key[:0])
			id, added := st.intern(key)
			if !added {
				continue
			}
			if id >= limit {
				return res, fmt.Errorf("%w: %d states", ErrStateLimit, limit)
			}
			info = append(info, nodeInfo{parent: head, label: tr.Label, delay: tr.Delay})
			res.StatesExplored++
			if goal(&tr.Target) {
				res.Reachable = true
				res.Trace = rebuildTrace(st, numLocs, numClocks, info, id)
				return res, nil
			}
		}
	}
	return res, nil
}

// nodeInfo records how a state was first reached, for witness
// reconstruction.
type nodeInfo struct {
	parent int
	label  string
	delay  bool
}

// rebuildTrace walks parent pointers back to the root and emits the
// forward trace with cumulative times, decoding each witness state out of
// the packed store.
func rebuildTrace(st *stateStore, numLocs, numClocks int, info []nodeInfo, goal int) []Step {
	var rev []int
	for at := goal; at != -1; at = info[at].parent {
		rev = append(rev, at)
	}
	steps := make([]Step, 0, len(rev))
	now := 0
	for i := len(rev) - 1; i >= 0; i-- {
		id := rev[i]
		if info[id].delay {
			now++
		}
		var s ta.State
		s.DecodeKey(st.key(id), numLocs, numClocks)
		steps = append(steps, Step{
			Label: info[id].label,
			Delay: info[id].delay,
			Time:  now,
			State: s,
		})
	}
	return steps
}

// Invariant explores the full state space and reports the first violation
// of pred (a safety check: pred must hold in every reachable state). It is
// CheckReachability with the goal negated, packaged for readability.
func Invariant(n *ta.Network, pred func(*ta.State) bool, opts Options) (Result, error) {
	return CheckReachability(n, func(s *ta.State) bool { return !pred(s) }, opts)
}

// CountStates exhaustively generates the reachable state space and returns
// its size; useful for regression-pinning model sizes.
func CountStates(n *ta.Network, opts Options) (states, transitions int, err error) {
	res, err := CheckReachability(n, func(*ta.State) bool { return false }, opts)
	return res.StatesExplored, res.TransitionsExplored, err
}
