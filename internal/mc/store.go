package mc

// stateStore is a packed, deduplicating store of state keys (the
// ta.State.AppendKey encodings). Keys are serialised once into a growable
// byte arena and addressed by dense integer ids through (offset, length)
// handles; an open-addressing hash index over those handles replaces the
// map[string]int of the original BFS, so steady-state interning allocates
// nothing — no per-state string, no map entry, no retained ta.State.
type stateStore struct {
	arena []byte
	// offs is a prefix-offset array: key i occupies arena[offs[i]:offs[i+1]].
	offs []uint64
	// hashes memoises each key's full hash for cheap probe rejection and
	// table growth without re-hashing the arena.
	hashes []uint64
	// table is the open-addressing index: 0 is empty, otherwise id+1.
	// Power-of-two sized, linear probing, grown at 3/4 load.
	table []int32
}

// minTableSize keeps the probe mask non-degenerate for tiny stores.
const minTableSize = 64

// newStateStore returns a store pre-sized for about hint keys.
func newStateStore(hint int) *stateStore {
	size := minTableSize
	for size*3/4 < hint {
		size *= 2
	}
	return &stateStore{
		offs:  make([]uint64, 1, hint+1),
		table: make([]int32, size),
	}
}

// len returns the number of interned keys.
func (st *stateStore) len() int { return len(st.offs) - 1 }

// key returns the bytes of key id. The slice aliases the arena and is
// invalidated by the next intern, so decode or copy before interning.
func (st *stateStore) key(id int) []byte {
	return st.arena[st.offs[id]:st.offs[id+1]]
}

// intern dedups key into the store: the id of the existing copy when seen
// before, otherwise a fresh id (added true) with the bytes appended to the
// arena. key itself is never retained.
func (st *stateStore) intern(key []byte) (id int, added bool) {
	return st.internHashed(key, hashKey(key))
}

// lookupHashed probes for key (with its precomputed hash) without
// inserting. It never mutates the store, so concurrent lookups are safe;
// lookups concurrent with interns are not.
func (st *stateStore) lookupHashed(key []byte, h uint64) (id int, ok bool) {
	mask := uint64(len(st.table) - 1)
	i := h & mask
	for {
		slot := st.table[i]
		if slot == 0 {
			return 0, false
		}
		cand := int(slot - 1)
		if st.hashes[cand] == h && string(st.key(cand)) == string(key) {
			return cand, true
		}
		i = (i + 1) & mask
	}
}

// internHashed is intern with the key's hash precomputed by the caller
// (the parallel explorer hashes once to pick a shard, then interns into
// that shard's store with the same hash).
func (st *stateStore) internHashed(key []byte, h uint64) (id int, added bool) {
	mask := uint64(len(st.table) - 1)
	i := h & mask
	for {
		slot := st.table[i]
		if slot == 0 {
			break
		}
		cand := int(slot - 1)
		if st.hashes[cand] == h && string(st.key(cand)) == string(key) {
			return cand, false
		}
		i = (i + 1) & mask
	}
	id = st.len()
	st.arena = append(st.arena, key...)
	st.offs = append(st.offs, uint64(len(st.arena)))
	st.hashes = append(st.hashes, h)
	st.table[i] = int32(id + 1)
	if (st.len()+1)*4 > len(st.table)*3 {
		st.grow()
	}
	return id, true
}

// grow doubles the hash table and reinserts every id from its memoised
// hash.
func (st *stateStore) grow() {
	//lint:allow noalloc-closure amortized hash-table doubling; O(1) amortized per intern and absent from the steady-state pins
	next := make([]int32, 2*len(st.table))
	mask := uint64(len(next) - 1)
	for id, h := range st.hashes {
		i := h & mask
		for next[i] != 0 {
			i = (i + 1) & mask
		}
		next[i] = int32(id + 1)
	}
	st.table = next
}

// hashKey mixes key 8 bytes at a time (FNV-style over words with an
// avalanche finish); state keys are short and uniform, so this beats
// byte-at-a-time hashing without pulling in a real hash dependency.
func hashKey(key []byte) uint64 {
	const m = 0x9E3779B97F4A7C15 // 2^64 / phi
	h := uint64(len(key))*m + 1
	for len(key) >= 8 {
		k := uint64(key[0]) | uint64(key[1])<<8 | uint64(key[2])<<16 | uint64(key[3])<<24 |
			uint64(key[4])<<32 | uint64(key[5])<<40 | uint64(key[6])<<48 | uint64(key[7])<<56
		h = (h ^ k) * m
		key = key[8:]
	}
	var tail uint64
	for i := len(key) - 1; i >= 0; i-- {
		tail = tail<<8 | uint64(key[i])
	}
	h = (h ^ tail) * m
	h ^= h >> 32
	h *= m
	h ^= h >> 29
	return h
}
