package mc

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/ta"
)

// counterNet builds a single automaton that counts to n with internal
// steps, then reaches "End".
func counterNet(n int32) (*ta.Network, int) {
	net := ta.NewNetwork()
	v := net.Var("count", 0)
	net.Add(&ta.Automaton{
		Name:      "counter",
		Locations: []ta.Location{{Name: "Run"}, {Name: "End"}},
		Edges: []ta.Edge{
			{
				From: 0, To: 0, Label: "inc",
				Guard:  func(s *ta.State) bool { return s.Vars[v] < n },
				Update: func(s *ta.State) { s.Vars[v]++ },
			},
			{
				From: 0, To: 1, Label: "done",
				Guard: func(s *ta.State) bool { return s.Vars[v] == n },
			},
		},
	})
	return net, v
}

func TestReachabilityFindsGoal(t *testing.T) {
	net, v := counterNet(5)
	res, err := CheckReachability(net, func(s *ta.State) bool { return s.Locs[0] == 1 }, Options{})
	if err != nil {
		t.Fatalf("CheckReachability: %v", err)
	}
	if !res.Reachable {
		t.Fatal("goal not reached")
	}
	// Shortest witness: 5 inc steps + done (plus initial pseudo-step).
	if len(res.Trace) != 7 {
		t.Fatalf("trace length = %d, want 7", len(res.Trace))
	}
	last := res.Trace[len(res.Trace)-1]
	if last.Label != "done" || last.State.Vars[v] != 5 {
		t.Fatalf("last step = %+v", last)
	}
	if res.Trace[0].Label != "" {
		t.Fatal("trace must start with the initial pseudo-step")
	}
}

func TestReachabilityUnreachable(t *testing.T) {
	net, v := counterNet(5)
	res, err := CheckReachability(net, func(s *ta.State) bool { return s.Vars[v] > 5 }, Options{})
	if err != nil {
		t.Fatalf("CheckReachability: %v", err)
	}
	if res.Reachable {
		t.Fatal("unreachable goal reported reachable")
	}
	if res.StatesExplored < 7 {
		t.Fatalf("explored %d states, want at least 7", res.StatesExplored)
	}
}

func TestReachabilityGoalAtInitial(t *testing.T) {
	net, _ := counterNet(3)
	res, err := CheckReachability(net, func(s *ta.State) bool { return true }, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reachable || len(res.Trace) != 1 {
		t.Fatalf("res = %+v", res)
	}
}

func TestStateLimit(t *testing.T) {
	net, _ := counterNet(1000)
	_, err := CheckReachability(net, func(s *ta.State) bool { return false }, Options{MaxStates: 10})
	if !errors.Is(err, ErrStateLimit) {
		t.Fatalf("err = %v, want ErrStateLimit", err)
	}
}

func TestTraceTimesCountTicks(t *testing.T) {
	// An automaton that must wait 3 ticks, then fires.
	net := ta.NewNetwork()
	c := net.Clock("x", 4)
	net.Add(&ta.Automaton{
		Name: "w",
		Locations: []ta.Location{
			{Name: "Wait", Invariant: func(s *ta.State) bool { return s.Clocks[c] <= 3 }},
			{Name: "Done"},
		},
		Edges: []ta.Edge{{
			From: 0, To: 1, Label: "fire",
			Guard: func(s *ta.State) bool { return s.Clocks[c] == 3 },
		}},
	})
	res, err := CheckReachability(net, func(s *ta.State) bool { return s.Locs[0] == 1 }, Options{})
	if err != nil || !res.Reachable {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	last := res.Trace[len(res.Trace)-1]
	if last.Time != 3 {
		t.Fatalf("goal at time %d, want 3", last.Time)
	}
}

func TestInvariantHelper(t *testing.T) {
	net, v := counterNet(4)
	res, err := Invariant(net, func(s *ta.State) bool { return s.Vars[v] <= 2 }, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reachable {
		t.Fatal("invariant violation not found")
	}
	if got := res.Trace[len(res.Trace)-1].State.Vars[v]; got != 3 {
		t.Fatalf("first violation at count=%d, want 3", got)
	}
}

func TestCountStates(t *testing.T) {
	net, _ := counterNet(5)
	states, trans, err := CountStates(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// count 0..5 in Run + End = 7 states.
	if states != 7 {
		t.Fatalf("states = %d, want 7", states)
	}
	if trans < 6 {
		t.Fatalf("transitions = %d, want at least 6", trans)
	}
}

func TestBuildLTSAndExport(t *testing.T) {
	net, _ := counterNet(2)
	l, err := BuildLTS(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if l.NumStates != 4 { // counts 0,1,2 in Run + End
		t.Fatalf("states = %d, want 4", l.NumStates)
	}
	var aut bytes.Buffer
	if err := l.WriteAUT(&aut); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(aut.String(), "des (0, ") {
		t.Fatalf("aut header = %q", aut.String()[:20])
	}
	var dot bytes.Buffer
	if err := l.WriteDOT(&dot, "counter"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dot.String(), "digraph") || !strings.Contains(dot.String(), "inc") {
		t.Fatal("dot output incomplete")
	}
}

// diamond builds an LTS with two bisimilar branches that strong
// minimisation must merge.
func diamond() *LTS {
	return &LTS{
		NumStates: 4,
		Initial:   0,
		Transitions: []Trans{
			{0, "a", 1},
			{0, "a", 2},
			{1, "b", 3},
			{2, "b", 3},
		},
	}
}

func TestMinimizeStrongMergesBisimilar(t *testing.T) {
	m := diamond().MinimizeStrong()
	if m.NumStates != 3 {
		t.Fatalf("minimised to %d states, want 3", m.NumStates)
	}
	if len(m.Transitions) != 2 {
		t.Fatalf("minimised to %d transitions, want 2: %v", len(m.Transitions), m.Transitions)
	}
}

func TestMinimizeStrongKeepsDistinct(t *testing.T) {
	l := &LTS{
		NumStates: 3,
		Initial:   0,
		Transitions: []Trans{
			{0, "a", 1},
			{1, "b", 2},
		},
	}
	m := l.MinimizeStrong()
	if m.NumStates != 3 {
		t.Fatalf("collapsed distinct states: %d", m.NumStates)
	}
}

func TestHide(t *testing.T) {
	l := diamond().Hide(func(label string) bool { return label == "a" })
	for _, tr := range l.Transitions {
		if tr.Label == "a" {
			t.Fatal("label a survived hiding")
		}
	}
	if got := l.Labels(); len(got) != 2 || got[0] != "b" || got[1] != Tau {
		t.Fatalf("labels = %v", got)
	}
}

func TestWeakTraceReduce(t *testing.T) {
	// tau.a | a  — both branches weak-trace equivalent to a single "a".
	l := &LTS{
		NumStates: 4,
		Initial:   0,
		Transitions: []Trans{
			{0, Tau, 1},
			{1, "a", 2},
			{0, "a", 3},
		},
	}
	r, err := l.WeakTraceReduce(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.NumStates != 2 || len(r.Transitions) != 1 || r.Transitions[0].Label != "a" {
		t.Fatalf("reduced = %+v", r)
	}
}

func TestWeakTraceReducePreservesOrder(t *testing.T) {
	// a.b must not become b.a.
	l := &LTS{
		NumStates: 3,
		Initial:   0,
		Transitions: []Trans{
			{0, "a", 1},
			{1, "b", 2},
		},
	}
	r, err := l.WeakTraceReduce(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Transitions) != 2 {
		t.Fatalf("transitions = %v", r.Transitions)
	}
	var first, second string
	for _, tr := range r.Transitions {
		if tr.From == r.Initial {
			first = tr.Label
		} else {
			second = tr.Label
		}
	}
	if first != "a" || second != "b" {
		t.Fatalf("order broken: %v", r.Transitions)
	}
}

func TestWeakTraceReduceLoop(t *testing.T) {
	// A tau self-loop plus visible action: reduction terminates and keeps
	// the visible behaviour.
	l := &LTS{
		NumStates: 2,
		Initial:   0,
		Transitions: []Trans{
			{0, Tau, 0},
			{0, "a", 1},
			{1, "a", 1},
		},
	}
	r, err := l.WeakTraceReduce(Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Both subset states have weak-trace set a*, so they collapse into a
	// single state with an a self-loop.
	if r.NumStates != 1 || len(r.Transitions) != 1 || r.Transitions[0] != (Trans{0, "a", 0}) {
		t.Fatalf("reduced = %+v", r)
	}
}
