package mc

import (
	"errors"
	"testing"

	"repro/internal/ta"
)

// TestSerialMatchesParallelLTS builds the LTS through both engines and
// demands byte-identical transition lists — the strongest equivalence the
// explorer exposes (ids, labels, and emission order all pinned).
func TestSerialMatchesParallelLTS(t *testing.T) {
	net1, _ := counterNet(6)
	base, err := BuildLTS(net1, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		net, _ := counterNet(6)
		l, err := BuildLTS(net, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if l.NumStates != base.NumStates || len(l.Transitions) != len(base.Transitions) {
			t.Fatalf("workers=%d: %d states / %d trans, want %d / %d",
				workers, l.NumStates, len(l.Transitions), base.NumStates, len(base.Transitions))
		}
		for i := range l.Transitions {
			if l.Transitions[i] != base.Transitions[i] {
				t.Fatalf("workers=%d: transition %d = %+v, want %+v",
					workers, i, l.Transitions[i], base.Transitions[i])
			}
		}
	}
}

// TestSerialStateLimitSemantics pins the serial engine's limit behaviour
// against the parallel contract: the level crossing the limit still
// expands in full (transition counts match the parallel engine), states
// stop committing at the limit, and the error is ErrStateLimit.
func TestSerialStateLimitSemantics(t *testing.T) {
	goal := func(s *ta.State) bool { return false }
	serialNet, _ := counterNet(40)
	serial, serialErr := CheckReachability(serialNet, goal, Options{MaxStates: 10, Workers: 1})
	if !errors.Is(serialErr, ErrStateLimit) {
		t.Fatalf("serial error = %v, want ErrStateLimit", serialErr)
	}
	parNet, _ := counterNet(40)
	par, parErr := CheckReachability(parNet, goal, Options{MaxStates: 10, Workers: 4})
	if !errors.Is(parErr, ErrStateLimit) {
		t.Fatalf("parallel error = %v, want ErrStateLimit", parErr)
	}
	if serial.StatesExplored != par.StatesExplored ||
		serial.TransitionsExplored != par.TransitionsExplored {
		t.Fatalf("serial (%d states, %d trans) != parallel (%d states, %d trans)",
			serial.StatesExplored, serial.TransitionsExplored,
			par.StatesExplored, par.TransitionsExplored)
	}
}

// TestSerialCheckerAllocBudget pins the workers=1 allocation regression
// fixed in this package: the parallel machinery cost ~1600 allocs per
// check (BENCH_mc.json pr4-maxprocs1) where the pr2 serial engine needed
// ~280. The direct-commit path must stay in the serial engine's budget;
// the bound includes network construction and covers growth headroom, and
// a 3x regression like pr4's blows straight through it.
func TestSerialCheckerAllocBudget(t *testing.T) {
	check := func() {
		net, v := counterNet(30)
		res, err := CheckReachability(net, func(s *ta.State) bool { return s.Vars[v] == 29 }, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Reachable {
			t.Fatal("goal unreachable")
		}
	}
	check() // warm any lazy package state
	avg := testing.AllocsPerRun(20, check)
	// The counter model plus one serial exploration sits around 100
	// allocs; 200 is comfortable headroom without letting candidate/merge
	// machinery back onto the path.
	if avg > 200 {
		t.Fatalf("serial check allocates %.0f/op, budget 200", avg)
	}
}
