package mc

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/ta"
)

// Tau is the label of hidden (internal) transitions in an LTS.
const Tau = "tau"

// Trans is one labelled transition of an LTS.
type Trans struct {
	From  int
	Label string
	To    int
}

// LTS is an explicit labelled transition system.
type LTS struct {
	NumStates   int
	Initial     int
	Transitions []Trans
}

// BuildLTS generates the full reachable transition system of a network.
func BuildLTS(n *ta.Network, opts Options) (*LTS, error) {
	limit := opts.maxStates()
	init := n.Initial()
	states := []ta.State{init}
	index := map[string]int{init.Key(): 0}
	l := &LTS{NumStates: 1}

	var buf []ta.Transition
	for head := 0; head < len(states); head++ {
		s := states[head]
		buf = n.Successors(&s, buf[:0])
		for _, tr := range buf {
			key := tr.Target.Key()
			id, seen := index[key]
			if !seen {
				id = len(states)
				if id >= limit {
					return nil, fmt.Errorf("%w: %d states", ErrStateLimit, limit)
				}
				index[key] = id
				states = append(states, tr.Target)
				l.NumStates++
			}
			l.Transitions = append(l.Transitions, Trans{From: head, Label: tr.Label, To: id})
		}
	}
	return l, nil
}

// Hide renames every transition whose label satisfies hidden to Tau.
func (l *LTS) Hide(hidden func(string) bool) *LTS {
	out := &LTS{NumStates: l.NumStates, Initial: l.Initial}
	out.Transitions = make([]Trans, len(l.Transitions))
	for i, t := range l.Transitions {
		if hidden(t.Label) {
			t.Label = Tau
		}
		out.Transitions[i] = t
	}
	return out
}

// Labels returns the sorted set of labels.
func (l *LTS) Labels() []string {
	set := map[string]bool{}
	for _, t := range l.Transitions {
		set[t.Label] = true
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// MinimizeStrong returns the quotient of the LTS under strong
// bisimulation, via signature-based partition refinement.
func (l *LTS) MinimizeStrong() *LTS {
	// succ[s] = transitions out of s.
	succ := make([][]Trans, l.NumStates)
	for _, t := range l.Transitions {
		succ[t.From] = append(succ[t.From], t)
	}
	block := make([]int, l.NumStates) // all in block 0 initially
	numBlocks := 1
	for {
		sigs := make(map[string]int)
		next := make([]int, l.NumStates)
		for s := 0; s < l.NumStates; s++ {
			var parts []string
			seen := map[string]bool{}
			for _, t := range succ[s] {
				p := fmt.Sprintf("%s\x00%d", t.Label, block[t.To])
				if !seen[p] {
					seen[p] = true
					parts = append(parts, p)
				}
			}
			sort.Strings(parts)
			sig := fmt.Sprintf("%d\x01%s", block[s], strings.Join(parts, "\x01"))
			id, ok := sigs[sig]
			if !ok {
				id = len(sigs)
				sigs[sig] = id
			}
			next[s] = id
		}
		if len(sigs) == numBlocks {
			block = next
			break
		}
		numBlocks = len(sigs)
		block = next
	}
	return l.quotient(block, numBlocks)
}

// quotient collapses states by block assignment.
func (l *LTS) quotient(block []int, numBlocks int) *LTS {
	out := &LTS{NumStates: numBlocks, Initial: block[l.Initial]}
	seen := map[Trans]bool{}
	for _, t := range l.Transitions {
		q := Trans{From: block[t.From], Label: t.Label, To: block[t.To]}
		if !seen[q] {
			seen[q] = true
			out.Transitions = append(out.Transitions, q)
		}
	}
	sort.Slice(out.Transitions, func(i, j int) bool {
		a, b := out.Transitions[i], out.Transitions[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.Label != b.Label {
			return a.Label < b.Label
		}
		return a.To < b.To
	})
	return out
}

// WeakTraceReduce determinises the LTS modulo weak-trace equivalence:
// tau-transitions are eliminated by closure, visible transitions are
// determinised by subset construction, and the result is minimised. The
// result accepts exactly the same weak traces (sequences of visible
// labels). Subset construction can blow up exponentially, so the same
// state limit applies.
func (l *LTS) WeakTraceReduce(opts Options) (*LTS, error) {
	limit := opts.maxStates()
	succ := make([][]Trans, l.NumStates)
	for _, t := range l.Transitions {
		succ[t.From] = append(succ[t.From], t)
	}

	closure := func(set map[int]bool) map[int]bool {
		stack := make([]int, 0, len(set))
		for s := range set {
			stack = append(stack, s)
		}
		for len(stack) > 0 {
			s := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, t := range succ[s] {
				if t.Label == Tau && !set[t.To] {
					set[t.To] = true
					stack = append(stack, t.To)
				}
			}
		}
		return set
	}
	keyOf := func(set map[int]bool) string {
		ids := make([]int, 0, len(set))
		for s := range set {
			ids = append(ids, s)
		}
		sort.Ints(ids)
		var sb strings.Builder
		for _, id := range ids {
			fmt.Fprintf(&sb, "%d,", id)
		}
		return sb.String()
	}

	initSet := closure(map[int]bool{l.Initial: true})
	sets := []map[int]bool{initSet}
	index := map[string]int{keyOf(initSet): 0}
	out := &LTS{NumStates: 1}

	for head := 0; head < len(sets); head++ {
		cur := sets[head]
		// Group visible successors by label.
		byLabel := map[string]map[int]bool{}
		for s := range cur {
			for _, t := range succ[s] {
				if t.Label == Tau {
					continue
				}
				if byLabel[t.Label] == nil {
					byLabel[t.Label] = map[int]bool{}
				}
				byLabel[t.Label][t.To] = true
			}
		}
		labels := make([]string, 0, len(byLabel))
		for lab := range byLabel {
			labels = append(labels, lab)
		}
		sort.Strings(labels)
		for _, lab := range labels {
			target := closure(byLabel[lab])
			key := keyOf(target)
			id, seen := index[key]
			if !seen {
				id = len(sets)
				if id >= limit {
					return nil, fmt.Errorf("%w: %d subset states", ErrStateLimit, limit)
				}
				index[key] = id
				sets = append(sets, target)
				out.NumStates++
			}
			out.Transitions = append(out.Transitions, Trans{From: head, Label: lab, To: id})
		}
	}
	return out.MinimizeStrong(), nil
}

// WriteAUT emits the LTS in Aldebaran (.aut) format, as consumed by CADP.
func (l *LTS) WriteAUT(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "des (%d, %d, %d)\n", l.Initial, len(l.Transitions), l.NumStates); err != nil {
		return err
	}
	for _, t := range l.Transitions {
		label := t.Label
		if label == Tau {
			label = "i" // CADP's internal action
		}
		if _, err := fmt.Fprintf(w, "(%d, %q, %d)\n", t.From, label, t.To); err != nil {
			return err
		}
	}
	return nil
}

// WriteDOT emits the LTS in Graphviz format.
func (l *LTS) WriteDOT(w io.Writer, name string) error {
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=TB;\n  node [shape=circle];\n", name); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  s%d [shape=doublecircle];\n", l.Initial); err != nil {
		return err
	}
	for _, t := range l.Transitions {
		if _, err := fmt.Fprintf(w, "  s%d -> s%d [label=%q];\n", t.From, t.To, t.Label); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
