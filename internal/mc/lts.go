package mc

import (
	"fmt"
	"io"
	"slices"
	"sort"
	"strings"

	"repro/internal/ta"
)

// Tau is the label of hidden (internal) transitions in an LTS.
const Tau = "tau"

// Trans is one labelled transition of an LTS.
type Trans struct {
	From  int
	Label string
	To    int
}

// LTS is an explicit labelled transition system.
type LTS struct {
	NumStates   int
	Initial     int
	Transitions []Trans
	// labelIDs and labelNames intern the transition labels to dense
	// integer ids (built lazily by internLabels), so the reduction
	// algorithms compare ints instead of strings. The exported API stays
	// string-typed.
	labelIDs   []int32
	labelNames []string
}

// internLabels builds the label intern table; a no-op when already built
// for the current transition count.
func (l *LTS) internLabels() {
	if l.labelIDs != nil && len(l.labelIDs) == len(l.Transitions) {
		return
	}
	idx := make(map[string]int32, 16)
	l.labelNames = l.labelNames[:0]
	l.labelIDs = make([]int32, len(l.Transitions))
	for i, t := range l.Transitions {
		id, ok := idx[t.Label]
		if !ok {
			id = int32(len(l.labelNames))
			l.labelNames = append(l.labelNames, t.Label)
			idx[t.Label] = id
		}
		l.labelIDs[i] = id
	}
}

// BuildLTS generates the full reachable transition system of a network.
// Transitions come out in (source id, successor enumeration) order, which
// is identical at any Options.Workers value.
func BuildLTS(n *ta.Network, opts Options) (*LTS, error) {
	e, _, states, _, err := explore(n, nil, nil, opts.maxStates(), opts.numWorkers(), true)
	if err != nil {
		return nil, err
	}
	return &LTS{NumStates: states, Transitions: e.mergeTrans()}, nil
}

// Hide renames every transition whose label satisfies hidden to Tau. The
// predicate is evaluated once per distinct label, not once per transition.
func (l *LTS) Hide(hidden func(string) bool) *LTS {
	l.internLabels()
	renamed := make([]string, len(l.labelNames))
	for i, name := range l.labelNames {
		if hidden(name) {
			renamed[i] = Tau
		} else {
			renamed[i] = name
		}
	}
	out := &LTS{NumStates: l.NumStates, Initial: l.Initial}
	out.Transitions = make([]Trans, len(l.Transitions))
	for i, t := range l.Transitions {
		t.Label = renamed[l.labelIDs[i]]
		out.Transitions[i] = t
	}
	return out
}

// Labels returns the sorted set of labels.
func (l *LTS) Labels() []string {
	l.internLabels()
	out := append([]string(nil), l.labelNames...)
	sort.Strings(out)
	return out
}

// lEdge is an interned transition: a label id and a target state.
type lEdge struct {
	label, to int32
}

// succEdges builds the per-state interned successor lists.
func (l *LTS) succEdges() [][]lEdge {
	l.internLabels()
	succ := make([][]lEdge, l.NumStates)
	for i, t := range l.Transitions {
		succ[t.From] = append(succ[t.From], lEdge{l.labelIDs[i], int32(t.To)})
	}
	return succ
}

// appendUint32/appendUint64 extend binary signature keys.
func appendUint32(buf []byte, v uint32) []byte {
	return append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendUint64(buf []byte, v uint64) []byte {
	return append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// MinimizeStrong returns the quotient of the LTS under strong
// bisimulation, via signature-based partition refinement. Signatures are
// packed (label id, successor block) integers — sorted and deduplicated in
// a reused buffer, with no per-state maps or string formatting.
func (l *LTS) MinimizeStrong() *LTS {
	succ := l.succEdges()
	block := make([]int32, l.NumStates) // all in block 0 initially
	numBlocks := 1
	var sigBuf []uint64
	var keyBuf []byte
	for {
		sigs := make(map[string]int32, numBlocks)
		next := make([]int32, l.NumStates)
		for s := 0; s < l.NumStates; s++ {
			sigBuf = sigBuf[:0]
			for _, e := range succ[s] {
				sigBuf = append(sigBuf, uint64(uint32(e.label))<<32|uint64(uint32(block[e.to])))
			}
			slices.Sort(sigBuf)
			keyBuf = appendUint32(keyBuf[:0], uint32(block[s]))
			for i, p := range sigBuf {
				if i > 0 && p == sigBuf[i-1] {
					continue
				}
				keyBuf = appendUint64(keyBuf, p)
			}
			id, ok := sigs[string(keyBuf)]
			if !ok {
				id = int32(len(sigs))
				sigs[string(keyBuf)] = id
			}
			next[s] = id
		}
		if len(sigs) == numBlocks {
			block = next
			break
		}
		numBlocks = len(sigs)
		block = next
	}
	return l.quotient(block, numBlocks)
}

// quotient collapses states by block assignment.
func (l *LTS) quotient(block []int32, numBlocks int) *LTS {
	out := &LTS{NumStates: numBlocks, Initial: int(block[l.Initial])}
	seen := map[Trans]bool{}
	for _, t := range l.Transitions {
		q := Trans{From: int(block[t.From]), Label: t.Label, To: int(block[t.To])}
		if !seen[q] {
			seen[q] = true
			out.Transitions = append(out.Transitions, q)
		}
	}
	sort.Slice(out.Transitions, func(i, j int) bool {
		a, b := out.Transitions[i], out.Transitions[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.Label != b.Label {
			return a.Label < b.Label
		}
		return a.To < b.To
	})
	return out
}

// WeakTraceReduce determinises the LTS modulo weak-trace equivalence:
// tau-transitions are eliminated by closure, visible transitions are
// determinised by subset construction, and the result is minimised. The
// result accepts exactly the same weak traces (sequences of visible
// labels). Subset construction can blow up exponentially, so the same
// state limit applies.
func (l *LTS) WeakTraceReduce(opts Options) (*LTS, error) {
	limit := opts.maxStates()
	succ := l.succEdges()
	numLabels := len(l.labelNames)
	tau := int32(-1)
	for i, name := range l.labelNames {
		if name == Tau {
			tau = int32(i)
		}
	}

	closure := func(set map[int]bool) map[int]bool {
		stack := make([]int, 0, len(set))
		for s := range set {
			//lint:allow map-order worklist seeding; the computed closure is a set, so the pop order cannot reach the output
			stack = append(stack, s)
		}
		for len(stack) > 0 {
			s := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, e := range succ[s] {
				if e.label == tau && !set[int(e.to)] {
					set[int(e.to)] = true
					stack = append(stack, int(e.to))
				}
			}
		}
		return set
	}
	// keyOf encodes a subset as its sorted member ids packed into a reused
	// byte buffer (replacing the old "%d," string keys); the result aliases
	// the buffer, so copy via the map's string conversion before reuse.
	var ids []int
	var keyBuf []byte
	keyOf := func(set map[int]bool) []byte {
		ids = ids[:0]
		for s := range set {
			ids = append(ids, s)
		}
		slices.Sort(ids)
		keyBuf = keyBuf[:0]
		for _, id := range ids {
			keyBuf = appendUint32(keyBuf, uint32(id))
		}
		return keyBuf
	}

	// byName lists the visible label ids in label-name order, so subset
	// states are discovered in exactly the order of the original
	// string-keyed construction (figure tests pin the output).
	byName := make([]int32, 0, numLabels)
	for i := int32(0); i < int32(numLabels); i++ {
		if i != tau {
			byName = append(byName, i)
		}
	}
	slices.SortFunc(byName, func(a, b int32) int {
		return strings.Compare(l.labelNames[a], l.labelNames[b])
	})

	initSet := closure(map[int]bool{l.Initial: true})
	sets := []map[int]bool{initSet}
	index := map[string]int{string(keyOf(initSet)): 0}
	out := &LTS{NumStates: 1}

	byLabel := make([]map[int]bool, numLabels)
	for head := 0; head < len(sets); head++ {
		// Group visible successors by label id.
		for s := range sets[head] {
			for _, e := range succ[s] {
				if e.label == tau {
					continue
				}
				if byLabel[e.label] == nil {
					byLabel[e.label] = map[int]bool{}
				}
				byLabel[e.label][int(e.to)] = true
			}
		}
		for _, lab := range byName {
			if byLabel[lab] == nil {
				continue
			}
			target := closure(byLabel[lab])
			byLabel[lab] = nil
			key := keyOf(target)
			id, seen := index[string(key)]
			if !seen {
				id = len(sets)
				if id >= limit {
					return nil, fmt.Errorf("%w: %d subset states", ErrStateLimit, limit)
				}
				index[string(key)] = id
				sets = append(sets, target)
				out.NumStates++
			}
			out.Transitions = append(out.Transitions, Trans{From: head, Label: l.labelNames[lab], To: id})
		}
	}
	return out.MinimizeStrong(), nil
}

// WriteAUT emits the LTS in Aldebaran (.aut) format, as consumed by CADP.
func (l *LTS) WriteAUT(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "des (%d, %d, %d)\n", l.Initial, len(l.Transitions), l.NumStates); err != nil {
		return err
	}
	for _, t := range l.Transitions {
		label := t.Label
		if label == Tau {
			label = "i" // CADP's internal action
		}
		if _, err := fmt.Fprintf(w, "(%d, %q, %d)\n", t.From, label, t.To); err != nil {
			return err
		}
	}
	return nil
}

// WriteDOT emits the LTS in Graphviz format.
func (l *LTS) WriteDOT(w io.Writer, name string) error {
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=TB;\n  node [shape=circle];\n", name); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  s%d [shape=doublecircle];\n", l.Initial); err != nil {
		return err
	}
	for _, t := range l.Transitions {
		if _, err := fmt.Fprintf(w, "  s%d -> s%d [label=%q];\n", t.From, t.To, t.Label); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
