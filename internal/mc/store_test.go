package mc

import (
	"fmt"
	"testing"
)

func testKeys(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		// Mixed lengths exercise the (offset, length) handles.
		keys[i] = []byte(fmt.Sprintf("state-%d-%s", i, "xxxxxxxx"[:i%8]))
	}
	return keys
}

func TestStateStoreInternDedup(t *testing.T) {
	st := newStateStore(4)
	keys := testKeys(1000) // forces several table growths past minTableSize
	for i, k := range keys {
		id, added := st.intern(k)
		if !added || id != i {
			t.Fatalf("intern(%q) = (%d, %v), want (%d, true)", k, id, added, i)
		}
	}
	if st.len() != len(keys) {
		t.Fatalf("len = %d, want %d", st.len(), len(keys))
	}
	for i, k := range keys {
		id, added := st.intern(k)
		if added || id != i {
			t.Fatalf("re-intern(%q) = (%d, %v), want (%d, false)", k, id, added, i)
		}
		if string(st.key(id)) != string(k) {
			t.Fatalf("key(%d) = %q, want %q", id, st.key(id), k)
		}
	}
}

func TestStateStoreDoesNotRetainCaller(t *testing.T) {
	st := newStateStore(4)
	buf := []byte("aaaa")
	st.intern(buf)
	copy(buf, "bbbb") // caller reuses its buffer
	if string(st.key(0)) != "aaaa" {
		t.Fatalf("stored key mutated to %q", st.key(0))
	}
	if id, added := st.intern(buf); !added || id != 1 {
		t.Fatalf("intern after reuse = (%d, %v), want (1, true)", id, added)
	}
}

func TestStateStoreLookupAllocs(t *testing.T) {
	st := newStateStore(1024)
	keys := testKeys(1000)
	for _, k := range keys {
		st.intern(k)
	}
	allocs := testing.AllocsPerRun(100, func() {
		for _, k := range keys {
			if _, added := st.intern(k); added {
				t.Fatal("hit path added a key")
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("lookup allocs/run = %v, want 0", allocs)
	}
}

// BenchmarkStateStore pins the packed store's intern cost: the miss path
// (fresh keys, amortised arena/table growth) and the hit path (dedup
// lookups, zero allocations).
func BenchmarkStateStore(b *testing.B) {
	keys := testKeys(100_000)
	b.Run("intern-miss", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			st := newStateStore(minTableSize)
			b.StartTimer()
			for _, k := range keys {
				st.intern(k)
			}
		}
		b.ReportMetric(float64(len(keys)*b.N)/b.Elapsed().Seconds(), "interns/s")
	})
	b.Run("intern-hit", func(b *testing.B) {
		st := newStateStore(len(keys))
		for _, k := range keys {
			st.intern(k)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, k := range keys {
				st.intern(k)
			}
		}
		b.ReportMetric(float64(len(keys)*b.N)/b.Elapsed().Seconds(), "interns/s")
	})
}
