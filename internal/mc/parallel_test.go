package mc

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/ta"
)

// stepRepr renders one trace in full for byte-identity comparison.
func stepRepr(steps []Step) string {
	out := ""
	for _, s := range steps {
		out += fmt.Sprintf("%q %v %d %x\n", s.Label, s.Delay, s.Time, s.State.AppendKey(nil))
	}
	return out
}

// TestParallelReachabilityDeterminism runs the toy counter model at
// several worker counts and demands identical counts and a byte-identical
// canonical trace.
func TestParallelReachabilityDeterminism(t *testing.T) {
	net, v := counterNet(6)
	goal := func(s *ta.State) bool { return s.Vars[v] == 3 }
	base, err := CheckReachability(net, goal, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !base.Reachable {
		t.Fatal("goal unreachable at workers=1")
	}
	for _, workers := range []int{2, 3, 8} {
		net, _ := counterNet(6)
		res, err := CheckReachability(net, goal, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Reachable != base.Reachable ||
			res.StatesExplored != base.StatesExplored ||
			res.TransitionsExplored != base.TransitionsExplored {
			t.Errorf("workers=%d: %+v; workers=1: %+v", workers, res, base)
		}
		if got, want := stepRepr(res.Trace), stepRepr(base.Trace); got != want {
			t.Errorf("workers=%d trace:\n%s\nwant:\n%s", workers, got, want)
		}
	}
}

// TestParallelStateLimitDeterminism pins that hitting MaxStates yields
// the same error and the same (level-complete) statistics at any worker
// count.
func TestParallelStateLimitDeterminism(t *testing.T) {
	goal := func(*ta.State) bool { return false }
	baseNet, _ := counterNet(100)
	base, baseErr := CheckReachability(baseNet, goal, Options{MaxStates: 10, Workers: 1})
	if !errors.Is(baseErr, ErrStateLimit) {
		t.Fatalf("workers=1 error = %v, want ErrStateLimit", baseErr)
	}
	for _, workers := range []int{2, 8} {
		net, _ := counterNet(100)
		res, err := CheckReachability(net, goal, Options{MaxStates: 10, Workers: workers})
		if !errors.Is(err, ErrStateLimit) {
			t.Fatalf("workers=%d error = %v, want ErrStateLimit", workers, err)
		}
		if res.StatesExplored != base.StatesExplored ||
			res.TransitionsExplored != base.TransitionsExplored {
			t.Errorf("workers=%d: %+v; workers=1: %+v", workers, res, base)
		}
	}
}

// TestParallelCountStates cross-checks CountStates at several worker
// counts on the toy model.
func TestParallelCountStates(t *testing.T) {
	net1, _ := counterNet(9)
	s1, t1, err := CountStates(net1, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		net, _ := counterNet(9)
		s, tr, err := CountStates(net, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if s != s1 || tr != t1 {
			t.Errorf("workers=%d: %d states %d transitions; workers=1: %d %d", workers, s, tr, s1, t1)
		}
	}
}
