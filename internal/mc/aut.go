package mc

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ErrBadAUT reports a malformed Aldebaran file.
var ErrBadAUT = errors.New("mc: malformed .aut")

// ReadAUT parses an LTS in Aldebaran (.aut) format, the inverse of
// WriteAUT, enabling round-trips through CADP tooling. CADP's internal
// action "i" is mapped back to Tau.
func ReadAUT(r io.Reader) (*LTS, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("%w: empty input", ErrBadAUT)
	}
	header := strings.TrimSpace(sc.Text())
	var initial, ntrans, nstates int
	if _, err := fmt.Sscanf(header, "des (%d, %d, %d)", &initial, &ntrans, &nstates); err != nil {
		return nil, fmt.Errorf("%w: header %q", ErrBadAUT, header)
	}
	if nstates < 1 || initial < 0 || initial >= nstates || ntrans < 0 {
		return nil, fmt.Errorf("%w: inconsistent header %q", ErrBadAUT, header)
	}
	l := &LTS{NumStates: nstates, Initial: initial}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		t, err := parseAUTTransition(line)
		if err != nil {
			return nil, err
		}
		if t.From < 0 || t.From >= nstates || t.To < 0 || t.To >= nstates {
			return nil, fmt.Errorf("%w: state out of range in %q", ErrBadAUT, line)
		}
		l.Transitions = append(l.Transitions, t)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(l.Transitions) != ntrans {
		return nil, fmt.Errorf("%w: header claims %d transitions, found %d", ErrBadAUT, ntrans, len(l.Transitions))
	}
	return l, nil
}

// parseAUTTransition parses `(from, "label", to)`, tolerating unquoted
// labels as some tools emit them.
func parseAUTTransition(line string) (Trans, error) {
	if !strings.HasPrefix(line, "(") || !strings.HasSuffix(line, ")") {
		return Trans{}, fmt.Errorf("%w: transition %q", ErrBadAUT, line)
	}
	body := line[1 : len(line)-1]
	firstComma := strings.Index(body, ",")
	lastComma := strings.LastIndex(body, ",")
	if firstComma < 0 || lastComma <= firstComma {
		return Trans{}, fmt.Errorf("%w: transition %q", ErrBadAUT, line)
	}
	from, err := strconv.Atoi(strings.TrimSpace(body[:firstComma]))
	if err != nil {
		return Trans{}, fmt.Errorf("%w: source in %q", ErrBadAUT, line)
	}
	to, err := strconv.Atoi(strings.TrimSpace(body[lastComma+1:]))
	if err != nil {
		return Trans{}, fmt.Errorf("%w: target in %q", ErrBadAUT, line)
	}
	label := strings.TrimSpace(body[firstComma+1 : lastComma])
	if strings.HasPrefix(label, `"`) && strings.HasSuffix(label, `"`) && len(label) >= 2 {
		unquoted, err := strconv.Unquote(label)
		if err != nil {
			return Trans{}, fmt.Errorf("%w: label in %q", ErrBadAUT, line)
		}
		label = unquoted
	}
	if label == "i" {
		label = Tau
	}
	return Trans{From: from, Label: label, To: to}, nil
}
