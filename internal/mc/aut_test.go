package mc

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"math/rand"
)

func TestAUTRoundTrip(t *testing.T) {
	l := &LTS{
		NumStates: 3,
		Initial:   0,
		Transitions: []Trans{
			{0, "a b", 1},
			{1, Tau, 2},
			{2, `quote"inside`, 0},
		},
	}
	var buf bytes.Buffer
	if err := l.WriteAUT(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAUT(&buf)
	if err != nil {
		t.Fatalf("ReadAUT: %v", err)
	}
	if got.NumStates != l.NumStates || got.Initial != l.Initial {
		t.Fatalf("shape = %d/%d", got.NumStates, got.Initial)
	}
	for i, tr := range l.Transitions {
		if got.Transitions[i] != tr {
			t.Fatalf("transition %d = %+v, want %+v", i, got.Transitions[i], tr)
		}
	}
}

// TestPropertyAUTRoundTrip: random LTSs survive write→read unchanged.
func TestPropertyAUTRoundTrip(t *testing.T) {
	labels := []string{"a", "beat p[0]", Tau, "x y z", "deliver"}
	f := func(seed int64, nRaw, tRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%10) + 1
		l := &LTS{NumStates: n, Initial: rng.Intn(n)}
		for i := 0; i < int(tRaw%40); i++ {
			l.Transitions = append(l.Transitions, Trans{
				From:  rng.Intn(n),
				Label: labels[rng.Intn(len(labels))],
				To:    rng.Intn(n),
			})
		}
		var buf bytes.Buffer
		if err := l.WriteAUT(&buf); err != nil {
			return false
		}
		got, err := ReadAUT(&buf)
		if err != nil {
			return false
		}
		if got.NumStates != l.NumStates || got.Initial != l.Initial ||
			len(got.Transitions) != len(l.Transitions) {
			return false
		}
		for i, tr := range l.Transitions {
			if got.Transitions[i] != tr {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestReadAUTRejectsGarbage(t *testing.T) {
	bad := []string{
		"",
		"not a header",
		"des (0, 1, 2)\nnonsense",
		"des (5, 0, 2)",                // initial out of range
		"des (0, 2, 2)\n(0, \"a\", 1)", // transition count mismatch
		"des (0, 1, 2)\n(0, \"a\", 7)", // target out of range
		"des (0, 1, 2)\n(x, \"a\", 1)", // bad source
		"des (0, 1, 2)\n(0, \"a\", y)", // bad target
		"des (0, 1, 2)\n0, \"a\", 1",   // missing parens
	}
	for _, in := range bad {
		if _, err := ReadAUT(strings.NewReader(in)); !errors.Is(err, ErrBadAUT) {
			t.Errorf("input %q: err = %v, want ErrBadAUT", in, err)
		}
	}
}

func TestReadAUTUnquotedLabelsAndTau(t *testing.T) {
	in := "des (0, 2, 2)\n(0, step, 1)\n(1, i, 0)\n"
	l, err := ReadAUT(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if l.Transitions[0].Label != "step" {
		t.Fatalf("label = %q", l.Transitions[0].Label)
	}
	if l.Transitions[1].Label != Tau {
		t.Fatalf("i not mapped to tau: %q", l.Transitions[1].Label)
	}
}
