// Package repro's root benchmark harness regenerates every table and
// figure of the reproduction (see DESIGN.md's experiment index):
//
//	go test -bench=. -benchmem                    # everything
//	go test -bench=BenchmarkTable1 -benchtime=1x  # one table
//
// Each benchmark validates the regenerated result against the analysis'
// expectation and fails on mismatch, so `-bench` doubles as the
// experiment suite.
package repro

import (
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/mc"
	"repro/internal/models"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/ta"
)

// expectRow checks one protocol row against the analysis' verdicts.
func expectRow(b *testing.B, cells []models.Cell, variant models.Variant, want [5]string) {
	b.Helper()
	for i, tmin := range models.DefaultTMins() {
		if got := models.VerdictString(cells, variant, tmin); got != want[i] {
			b.Fatalf("%v tmin=%d: verdicts %q, want %q", variant, tmin, got, want[i])
		}
	}
}

// BenchmarkTable1BinaryFamily regenerates the binary, revised-binary and
// two-phase columns of Table 1 (R1/R2/R3 over tmin = 1,4,5,9,10, tmax=10).
func BenchmarkTable1BinaryFamily(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := models.RunTable(models.TableSpec{
			Variants: []models.Variant{models.Binary, models.RevisedBinary, models.TwoPhase},
			TMins:    models.DefaultTMins(),
			TMax:     10,
			N:        1,
		})
		if err != nil {
			b.Fatal(err)
		}
		expectRow(b, cells, models.Binary, [5]string{"FTT", "FTT", "FTT", "TTT", "TFF"})
		expectRow(b, cells, models.RevisedBinary, [5]string{"FTT", "FTT", "FTT", "TTT", "TFF"})
		// Two-phase is not a Table 1 column; under the inactivation rule
		// implemented here its R1 row diverges at tmin=9 (see DESIGN.md).
		expectRow(b, cells, models.TwoPhase, [5]string{"FTT", "FTT", "FTT", "FTT", "TFF"})
	}
}

// BenchmarkTable1Static regenerates the static column of Table 1 with two
// participants.
func BenchmarkTable1Static(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := models.RunTable(models.TableSpec{
			Variants: []models.Variant{models.Static},
			TMins:    models.DefaultTMins(),
			TMax:     10,
			N:        2,
		})
		if err != nil {
			b.Fatal(err)
		}
		expectRow(b, cells, models.Static, [5]string{"FTT", "FTT", "FTT", "TTT", "TFF"})
	}
}

// BenchmarkTable2 regenerates Table 2: the expanding and dynamic
// protocols (R1: F F F T T, R2: T T F F F, R3: T T T T F).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := models.RunTable(models.TableSpec{
			Variants: []models.Variant{models.Expanding, models.Dynamic},
			TMins:    models.DefaultTMins(),
			TMax:     10,
			N:        1,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, v := range []models.Variant{models.Expanding, models.Dynamic} {
			expectRow(b, cells, v, [5]string{"FTT", "FTT", "FFT", "TFT", "TFF"})
		}
	}
}

// BenchmarkTableFixed regenerates the §6 result: the corrected protocols
// satisfy every requirement on every data set.
func BenchmarkTableFixed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := models.RunTable(models.TableSpec{
			Variants: []models.Variant{
				models.Binary, models.RevisedBinary, models.TwoPhase,
				models.Expanding, models.Dynamic,
			},
			TMins: models.DefaultTMins(),
			TMax:  10,
			N:     1,
			Fixed: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cells {
			if !c.Verdict.Satisfied {
				b.Fatalf("fixed %v tmin=%d %v: violated", c.Variant, c.TMin, c.Prop)
			}
		}
	}
}

// BenchmarkTableFixedStatic is the heavyweight cell block: the corrected
// static protocol with two participants (millions of states per check).
func BenchmarkTableFixedStatic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := models.RunTable(models.TableSpec{
			Variants: []models.Variant{models.Static},
			TMins:    models.DefaultTMins(),
			TMax:     10,
			N:        2,
			Fixed:    true,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cells {
			if !c.Verdict.Satisfied {
				b.Fatalf("fixed static tmin=%d %v: violated", c.TMin, c.Prop)
			}
		}
	}
}

// BenchmarkFig1LTS regenerates Figure 1: the transition system of the
// isolated binary p[0] with tmax=2, tmin=1, weak-trace reduced.
func BenchmarkFig1LTS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		net, err := models.BuildIsolatedP0(1, 2)
		if err != nil {
			b.Fatal(err)
		}
		l, err := mc.BuildLTS(net, mc.Options{})
		if err != nil {
			b.Fatal(err)
		}
		r, err := l.WeakTraceReduce(mc.Options{})
		if err != nil {
			b.Fatal(err)
		}
		// The figure's reduced system is small; pin the regenerated size.
		if r.NumStates != 12 {
			b.Fatalf("reduced p0 LTS has %d states, want 12", r.NumStates)
		}
	}
}

// BenchmarkFig2LTS regenerates Figure 2: the isolated binary p[1].
func BenchmarkFig2LTS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		net, err := models.BuildIsolatedP1(1, 2)
		if err != nil {
			b.Fatal(err)
		}
		l, err := mc.BuildLTS(net, mc.Options{})
		if err != nil {
			b.Fatal(err)
		}
		r, err := l.WeakTraceReduce(mc.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if r.NumStates != 8 {
			b.Fatalf("reduced p1 LTS has %d states, want 8", r.NumStates)
		}
	}
}

// benchFigure reproduces one counter-example figure.
func benchFigure(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		f, err := models.FindFigure(id)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := f.Reproduce(mc.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10Trace finds the R1 counter-examples of Figure 10, both
// the stale-beat variant (a) and the plain-decay variant (b).
func BenchmarkFig10Trace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// (a): additionally require the stale-beat shape.
		fa, err := models.FindFigure("10a")
		if err != nil {
			b.Fatal(err)
		}
		m, err := models.Build(fa.Cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := m.VerifyGoal(func(s *ta.State) bool {
			return m.R1Violated(s) && m.EverDelivered(s, 0) && !m.MessageLost(s)
		}, mc.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Reachable {
			b.Fatal("figure 10a not reproduced")
		}
		// (b).
		fb, err := models.FindFigure("10b")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := fb.Reproduce(mc.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11Trace finds the simultaneous beat/watchdog R2 race.
func BenchmarkFig11Trace(b *testing.B) { benchFigure(b, "11") }

// BenchmarkFig12Trace finds the simultaneous reply/timeout R3 race.
func BenchmarkFig12Trace(b *testing.B) { benchFigure(b, "12") }

// BenchmarkFig13Trace finds the late-join-acknowledgement R2 race.
func BenchmarkFig13Trace(b *testing.B) { benchFigure(b, "13") }

// BenchmarkOverheadSweep regenerates Q1: steady-state message rate vs
// tmax, which must track 2/tmax for the binary protocol (one exchange per
// round).
func BenchmarkOverheadSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, tmax := range []core.Tick{8, 16, 32, 64} {
			res, err := scenario.MeasureOverhead(scenario.OverheadConfig{
				Cluster: detector.ClusterConfig{
					Protocol: detector.ProtocolBinary,
					Core:     core.Config{TMin: 2, TMax: tmax},
				},
				Duration: sim.Time(tmax) * 200,
			})
			if err != nil {
				b.Fatal(err)
			}
			want := 2.0 / float64(tmax)
			if res.MessagesPerTick < want*0.85 || res.MessagesPerTick > want*1.15 {
				b.Fatalf("tmax=%d: rate %v, want about %v", tmax, res.MessagesPerTick, want)
			}
		}
	}
}

// BenchmarkDetectionDelay regenerates Q2: crash-to-suspicion latency,
// always within the corrected bound.
func BenchmarkDetectionDelay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := scenario.MeasureDetection(scenario.DetectionConfig{
			Cluster: detector.ClusterConfig{
				Protocol: detector.ProtocolBinary,
				Core:     core.Config{TMin: 2, TMax: 16},
			},
			CrashAt: 160,
			Horizon: 400,
			Trials:  50,
			Seed:    int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Missed != 0 {
			b.Fatalf("%d crashes undetected", res.Missed)
		}
		maxDelay, err := res.Delays.Max()
		if err != nil {
			b.Fatal(err)
		}
		if maxDelay > float64(res.Bound) {
			b.Fatalf("max delay %v exceeds bound %d", maxDelay, res.Bound)
		}
	}
}

// BenchmarkReliabilitySweep regenerates Q3: false-detection probability
// under loss; the accelerated protocol must beat the plain baseline at
// matched message rate, and the curve must be monotone in the loss rate.
func BenchmarkReliabilitySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var prev float64 = -1
		for _, loss := range []float64{0.05, 0.2, 0.4} {
			acc, err := scenario.MeasureReliability(scenario.ReliabilityConfig{
				Cluster: detector.ClusterConfig{
					Protocol: detector.ProtocolBinary,
					Core:     core.Config{TMin: 2, TMax: 16},
				},
				LossProb: loss,
				Horizon:  3000,
				Trials:   60,
				Seed:     int64(i + 1),
			})
			if err != nil {
				b.Fatal(err)
			}
			plain, err := scenario.MeasurePlainReliability(
				scenario.PlainClusterConfig{Period: 16, MissLimit: 1, N: 1},
				loss, 3000, 60, int64(i+1))
			if err != nil {
				b.Fatal(err)
			}
			pa, _ := acc.FalseDetection.Value()
			pp, _ := plain.FalseDetection.Value()
			if pa > pp {
				b.Fatalf("loss %v: accelerated %v worse than plain %v", loss, pa, pp)
			}
			if pa < prev {
				b.Fatalf("false-detection probability not monotone: %v after %v", pa, prev)
			}
			prev = pa
		}
	}
}

// BenchmarkShutdownGoal verifies the 1998 paper's headline liveness goal
// (network-wide shutdown within a bound of any relevant crash) on the
// small-constant models.
func BenchmarkShutdownGoal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, variant := range []models.Variant{models.Binary, models.Expanding, models.Dynamic} {
			cfg := models.Config{TMin: 2, TMax: 4, Variant: variant, N: 1}
			v, err := models.VerifyShutdown(cfg, cfg.ShutdownBound(), mc.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if !v.Satisfied {
				b.Fatalf("%v: shutdown goal violated", variant)
			}
		}
	}
}

// BenchmarkAblationFixes decomposes the §6 repair: bounds fix R1,
// priority fixes the races, and neither alone fixes everything.
func BenchmarkAblationFixes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// Priority only: R2 repaired at the tmin=tmax race, R1 still broken.
		prio := models.Config{TMin: 10, TMax: 10, Variant: models.Binary, N: 1, FixPriority: true}
		if v, err := models.Verify(prio, models.R2, mc.Options{}); err != nil || !v.Satisfied {
			b.Fatalf("priority-only R2: %v %v", v.Satisfied, err)
		}
		prioR1 := models.Config{TMin: 1, TMax: 10, Variant: models.Binary, N: 1, FixPriority: true}
		if v, err := models.Verify(prioR1, models.R1, mc.Options{}); err != nil || v.Satisfied {
			b.Fatalf("priority-only R1 should stay violated: %v %v", v.Satisfied, err)
		}
		// Bounds only: R1 repaired, the race remains.
		bounds := models.Config{TMin: 10, TMax: 10, Variant: models.Binary, N: 1, FixBounds: true}
		if v, err := models.Verify(bounds, models.R2, mc.Options{}); err != nil || v.Satisfied {
			b.Fatalf("bounds-only R2 should stay violated: %v %v", v.Satisfied, err)
		}
		boundsR1 := models.Config{TMin: 1, TMax: 10, Variant: models.Binary, N: 1, FixBounds: true}
		if v, err := models.Verify(boundsR1, models.R1, mc.Options{}); err != nil || !v.Satisfied {
			b.Fatalf("bounds-only R1: %v %v", v.Satisfied, err)
		}
	}
}

// BenchmarkCheckerThroughput measures raw model-checker speed
// (states/second) on the binary model, the unit underlying every table.
func BenchmarkCheckerThroughput(b *testing.B) {
	b.ReportAllocs()
	states := 0
	for i := 0; i < b.N; i++ {
		m, err := models.Build(models.Config{TMin: 9, TMax: 10, Variant: models.Binary, N: 1})
		if err != nil {
			b.Fatal(err)
		}
		v, err := m.Verify(models.R1, mc.Options{})
		if err != nil {
			b.Fatal(err)
		}
		states += v.Result.StatesExplored
	}
	b.ReportMetric(float64(states)/b.Elapsed().Seconds(), "states/s")
}

// BenchmarkCheckerThroughputParallel is the same unit measured through
// the parallel BFS with all cores. Counts must match the sequential
// engine exactly — the benchmark doubles as a determinism check.
func BenchmarkCheckerThroughputParallel(b *testing.B) {
	b.ReportAllocs()
	cfg := models.Config{TMin: 9, TMax: 10, Variant: models.Binary, N: 1}
	base, err := models.Verify(cfg, models.R1, mc.Options{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	states := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := models.Build(cfg)
		if err != nil {
			b.Fatal(err)
		}
		v, err := m.Verify(models.R1, mc.Options{Workers: runtime.GOMAXPROCS(0)})
		if err != nil {
			b.Fatal(err)
		}
		if v.Result.StatesExplored != base.Result.StatesExplored ||
			v.Result.TransitionsExplored != base.Result.TransitionsExplored {
			b.Fatalf("parallel counts (%d, %d) diverge from sequential (%d, %d)",
				v.Result.StatesExplored, v.Result.TransitionsExplored,
				base.Result.StatesExplored, base.Result.TransitionsExplored)
		}
		states += v.Result.StatesExplored
	}
	b.ReportMetric(float64(states)/b.Elapsed().Seconds(), "states/s")
}

// BenchmarkSimulatorThroughput measures discrete-event engine speed
// (events/second) on a fault-free binary cluster.
func BenchmarkSimulatorThroughput(b *testing.B) {
	b.ReportAllocs()
	events := uint64(0)
	for i := 0; i < b.N; i++ {
		c, err := detector.NewCluster(detector.ClusterConfig{
			Protocol: detector.ProtocolBinary,
			Core:     core.Config{TMin: 2, TMax: 16},
			Seed:     int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := c.Start(); err != nil {
			b.Fatal(err)
		}
		c.Sim.RunUntil(100_000)
		events += c.Sim.EventsExecuted()
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}
